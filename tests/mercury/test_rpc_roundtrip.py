"""End-to-end Mercury RPC tests over the simulated fabric."""

import pytest

from repro.mercury import HGConfig
from .conftest import call_rpc, make_world, serve_echo


def test_echo_roundtrip(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {"msg": "hello"}, results)
    world.sim.run(until=0.05)
    assert len(results) == 1
    output, handle, t_done = results[0]
    assert output == {"echo": {"msg": "hello"}}
    assert t_done > 0


def test_many_concurrent_rpcs_all_complete(world):
    serve_echo(world.svr)
    results = []
    for i in range(32):
        call_rpc(world.cli, "svr", "echo", {"i": i}, results)
    world.sim.run(until=0.5)
    assert len(results) == 32
    assert sorted(r[0]["echo"]["i"] for r in results) == list(range(32))


def test_payload_really_arrives_not_a_stub(world):
    """The simulated stack transports real payload objects end to end."""
    serve_echo(world.svr)
    results = []
    payload = {"keys": [f"k{i}" for i in range(10)], "blob": b"\x01\x02" * 50}
    call_rpc(world.cli, "svr", "echo", payload, results)
    world.sim.run(until=0.05)
    assert results[0][0]["echo"] == payload


def test_rpc_latency_increases_with_handler_work():
    sim1, sides1 = make_world()
    serve_echo(sides1["svr"], work_time=0.0)
    fast = []
    call_rpc(sides1["cli"], "svr", "echo", {}, fast)
    sim1.run(until=0.5)

    sim2, sides2 = make_world()
    serve_echo(sides2["svr"], work_time=1e-3)
    slow = []
    call_rpc(sides2["cli"], "svr", "echo", {}, slow)
    sim2.run(until=0.5)

    assert slow[0][2] > fast[0][2] + 0.9e-3


def test_bigger_payload_takes_longer():
    sim1, sides1 = make_world()
    serve_echo(sides1["svr"])
    small = []
    call_rpc(sides1["cli"], "svr", "echo", "x", small)
    sim1.run(until=0.5)

    sim2, sides2 = make_world()
    serve_echo(sides2["svr"])
    big = []
    call_rpc(sides2["cli"], "svr", "echo", "x" * 200_000, big)
    sim2.run(until=0.5)

    assert big[0][2] > small[0][2]


def test_forward_requires_origin_handle(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {}, results)
    world.sim.run(until=0.05)
    # Build a fake target-side handle and try to forward it.
    from repro.mercury import HGHandle

    th = HGHandle(1, "echo", "cli", "svr", is_origin=False)
    gen = world.cli.hg.forward(th, {}, lambda h: None)
    with pytest.raises(ValueError):
        next(gen)


def test_respond_requires_target_handle(world):
    h = None
    world.cli.hg.register("echo")
    h = world.cli.hg.create("svr", "echo")
    gen = world.cli.hg.respond(h, {}, lambda hh: None)
    with pytest.raises(ValueError):
        next(gen)


def test_create_unregistered_rpc_raises(world):
    with pytest.raises(ValueError):
        world.cli.hg.create("svr", "nope")


def test_duplicate_handler_registration_raises(world):
    world.svr.hg.register("dup", lambda h: None)
    with pytest.raises(ValueError):
        world.svr.hg.register("dup", lambda h: None)


def test_client_only_registration_then_handler_ok(world):
    world.svr.hg.register("later")
    world.svr.hg.register("later", lambda h: None)  # upgrade to handler
    assert "later" in world.svr.hg.registered_rpcs


def test_request_for_handlerless_rpc_fails_loudly(world):
    world.svr.hg.register("void")  # no handler installed
    results = []
    call_rpc(world.cli, "svr", "void", {}, results)
    with pytest.raises(RuntimeError, match="no handler"):
        world.sim.run(until=0.05)


def test_header_metadata_propagates_to_target(world):
    """Margo rides callpath/trace metadata in the handle header."""
    seen = serve_echo(world.svr)
    results = []

    def body():
        world.cli.hg.register("echo")
        h = world.cli.hg.create("svr", "echo")
        h.header["callpath"] = 0xABCD
        h.header["request_id"] = "req-7"
        ev = world.cli.rt.eventual()
        yield from world.cli.hg.forward(h, {}, lambda hh: ev.signal(hh))
        yield from ev.wait()
        results.append(True)

    world.cli.rt.spawn(body(), world.cli.primary)
    world.sim.run(until=0.05)
    assert results == [True]
    assert seen[0].header == {"callpath": 0xABCD, "request_id": "req-7"}


def test_target_marks_t3_and_t4(world):
    seen = serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {}, results)
    world.sim.run(until=0.05)
    h = seen[0]
    assert "t3" in h.marks and "t4" in h.marks
    assert h.marks["t4"] >= h.marks["t3"]


def test_intra_node_rpc_faster_than_inter_node():
    sim1, sides1 = make_world(names=(("cli", "n0"), ("svr", "n0")))
    serve_echo(sides1["svr"])
    same = []
    call_rpc(sides1["cli"], "svr", "echo", "payload" * 100, same)
    sim1.run(until=0.5)

    sim2, sides2 = make_world(names=(("cli", "n0"), ("svr", "n1")))
    serve_echo(sides2["svr"])
    cross = []
    call_rpc(sides2["cli"], "svr", "echo", "payload" * 100, cross)
    sim2.run(until=0.5)

    assert same[0][2] < cross[0][2]


def test_bulk_pull_transfers_and_times(world):
    """A handler can pull bulk data from the origin; duration scales with
    size."""
    durations = []

    def on_arrival(handle):
        def handler():
            yield from world.svr.hg.get_input(handle)
            d1 = yield from world.svr.hg.bulk_pull(handle, 1_000)
            d2 = yield from world.svr.hg.bulk_pull(handle, 10_000_000)
            durations.append((d1, d2))
            ev = world.svr.rt.eventual()
            yield from world.svr.hg.respond(handle, "ok", lambda h: ev.signal())
            yield from ev.wait()

        world.svr.rt.spawn(handler(), world.svr.handlers)

    world.svr.hg.register("bulk", on_arrival)
    results = []
    call_rpc(world.cli, "svr", "bulk", {}, results)
    world.sim.run(until=0.5)
    assert results[0][0] == "ok"
    d1, d2 = durations[0]
    assert d2 > d1 > 0


def test_bulk_pull_rejects_negative_size(world):
    world.svr.hg.register("x")
    from repro.mercury import HGHandle

    h = HGHandle(9, "x", "cli", "svr", is_origin=False)
    gen = world.svr.hg.bulk_pull(h, -5)
    with pytest.raises(ValueError):
        next(gen)
