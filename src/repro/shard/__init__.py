"""repro.shard: consistent-hash placement and shard migration.

Places SDSKV keys, BAKE regions, and HEPnOS datasets across dozens to
hundreds of simulated service processes:

- ``HashRing``: seeded, virtual-node-weighted consistent-hash ring
  (sha256 tokens — never Python ``hash()``, which is per-process
  randomized).
- ``ShardMap``: immutable shard -> owner snapshot derived from a ring;
  ``diff`` yields the shard moves between two snapshots.
- ``ShardKvProvider`` / ``ShardedKVService``: a sharded KV+BAKE service
  with ownership fencing (wrong-owner requests get a redirect, never a
  silent ack).
- ``ShardRouter``: client-side routing through an eventually consistent
  SSG view replica, following redirects during migration windows.
- ``ShardManager`` / ``MigrationRecord``: REMI-style shard migration
  ULTs driven by SSG view changes (failover) and by monitor hot-spot
  detectors (rebalance).
- ``run_churn_audit``: conservation audit used by the churn fuzzer.

See docs/sharding.md for the protocol.
"""

from .ring import HashRing
from .placement import ShardMap, ShardMove
from .service import ShardKvProvider, ShardedKVService
from .router import ShardRouter
from .migration import MigrationRecord, ShardManager
from .balancer import ShardHotspotDetector, make_hotspot_detector_factory
from .audit import ChurnReport, run_churn_audit

__all__ = [
    "HashRing",
    "ShardMap",
    "ShardMove",
    "ShardKvProvider",
    "ShardedKVService",
    "ShardRouter",
    "ShardManager",
    "MigrationRecord",
    "ShardHotspotDetector",
    "make_hotspot_detector_factory",
    "ChurnReport",
    "run_churn_audit",
]
