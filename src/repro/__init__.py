"""SYMBIOSYS reproduction: integrated performance analysis for
composable HPC data services over a simulated Mochi stack.

Package map (bottom-up):

* :mod:`repro.sim`       -- discrete-event kernel (tasks, events, clocks)
* :mod:`repro.argobots`  -- user-level threading (ULTs, pools, ESs)
* :mod:`repro.net`       -- RDMA fabric + OFI-style completion queues
* :mod:`repro.mercury`   -- RPC library with the PVAR tool interface
* :mod:`repro.margo`     -- the per-process Mochi layer (providers,
  blocking forward/respond, progress loop, runtime reconfiguration)
* :mod:`repro.ssg`       -- scalable service groups
* :mod:`repro.symbiosys` -- THE PAPER'S CONTRIBUTION: callpath profiling,
  distributed tracing, PVAR fusion, analysis scripts, Zipkin export,
  and the in-situ policy engine
* :mod:`repro.services`  -- BAKE, SDSKV, Sonata, REMI, Mobject, HEPnOS
* :mod:`repro.workloads` -- ior, synthetic event files, JSON records
* :mod:`repro.experiments` -- Table IV configs and per-figure harnesses
  (also a CLI: ``python -m repro.experiments``)

See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology and paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
