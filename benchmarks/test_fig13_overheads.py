"""Figure 13: SYMBIOSYS measurement overheads.

The data-loader workload is repeated 5 times at each instrumentation
stage (Baseline / Stage 1 / Stage 2 / Full Support).  Two findings are
reproduced:

* the *simulated* application timeline is bit-identical across stages --
  the instrumentation never perturbs the measured system; and
* the real (wall-clock) cost of enabling instrumentation is modest and
  grows with the stage, which is this reproduction's analogue of the
  paper's "minimal overheads indistinguishable from run-to-run
  variation".
"""

from repro.experiments import TABLE_IV, ascii_table, run_overhead_study
from repro.symbiosys import Stage
from .conftest import run_once

REPETITIONS = 5
EVENTS_PER_CLIENT = 512
# The paper's overhead study ran 224 clients / 32 servers on 128 nodes;
# we scale to C2's 32-client/4-server shape with a reduced event count.
CONFIG = TABLE_IV["C2"]


def _run():
    return run_overhead_study(
        config=CONFIG,
        repetitions=REPETITIONS,
        events_per_client=EVENTS_PER_CLIENT,
    )


def test_fig13_overheads(benchmark, report):
    study = run_once(benchmark, _run)
    report.append(
        f"Figure 13: measurement overheads "
        f"({REPETITIONS} repetitions per stage, average reported)"
    )
    report.append(ascii_table(study.rows()))

    timings = study.timings
    # Simulated makespans identical across all stages: instrumentation
    # does not perturb the system under test.
    makespans = {
        stage: round(t.mean_makespan, 12) for stage, t in timings.items()
    }
    assert len(set(makespans.values())) == 1, makespans

    # Stages collect what they should.
    assert timings[Stage.OFF].trace_events == 0
    assert timings[Stage.STAGE1].trace_events == 0
    assert timings[Stage.STAGE2].trace_events > 0
    assert timings[Stage.FULL].trace_events >= timings[Stage.STAGE2].trace_events

    # Full-support wall-clock overhead stays within a sane envelope of
    # baseline (generous bound: 2x -- the paper's was within run noise).
    assert study.overhead_vs_baseline(Stage.FULL) < 1.0
    for stage in (Stage.STAGE1, Stage.STAGE2, Stage.FULL):
        benchmark.extra_info[f"overhead_{stage.name.lower()}"] = round(
            study.overhead_vs_baseline(stage), 4
        )
