"""Tests for the two-level ULT / execution-stream scheduler."""

import pytest

from repro.argobots import AbtRuntime, Compute, UltState, YieldNow
from repro.sim import Simulator


def make_runtime(n_es=1, ctx_cost=0.0, **kw):
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=ctx_cost, **kw)
    pool = rt.create_pool("p0")
    for _ in range(n_es):
        rt.create_xstream(pool)
    return sim, rt, pool


def test_single_ult_runs_to_completion():
    sim, rt, pool = make_runtime()
    log = []

    def body():
        log.append(("start", sim.now))
        yield Compute(2.0)
        log.append(("end", sim.now))
        return "ok"

    ult = rt.spawn(body(), pool, name="worker")
    sim.run(until=10.0)
    assert log == [("start", 0.0), ("end", 2.0)]
    assert ult.terminated
    assert ult.result == "ok"
    assert ult.finished_at == 2.0


def test_compute_occupies_es_serially():
    """One ES: ULTs run one after another (no preemption)."""
    sim, rt, pool = make_runtime(n_es=1)
    spans = []

    def body(tag):
        start = sim.now
        yield Compute(1.0)
        spans.append((tag, start, sim.now))

    for tag in range(3):
        rt.spawn(body(tag), pool)
    sim.run(until=10.0)
    assert spans == [(0, 0.0, 1.0), (1, 1.0, 2.0), (2, 2.0, 3.0)]


def test_multiple_es_run_in_parallel():
    sim, rt, pool = make_runtime(n_es=3)
    ends = []

    def body():
        yield Compute(1.0)
        ends.append(sim.now)

    for _ in range(3):
        rt.spawn(body(), pool)
    sim.run(until=10.0)
    assert ends == [1.0, 1.0, 1.0]


def test_queueing_delay_with_insufficient_es():
    """6 unit-length ULTs on 2 ESs finish in 3 time units: queueing delay
    (the paper's 'target handler time') emerges from the pool."""
    sim, rt, pool = make_runtime(n_es=2)

    def body():
        yield Compute(1.0)

    ults = [rt.spawn(body(), pool) for _ in range(6)]
    sim.run(until=10.0)
    assert sim.now >= 3.0
    waits = [u.started_at - u.created_at for u in ults]
    # First two dispatch immediately; later ones wait ~1s and ~2s.
    assert waits[0] == 0.0 and waits[1] == 0.0
    assert waits[4] == pytest.approx(2.0)
    assert waits[5] == pytest.approx(2.0)


def test_yield_now_round_robins():
    sim, rt, pool = make_runtime(n_es=1)
    order = []

    def body(tag):
        for step in range(2):
            order.append((tag, step))
            yield YieldNow()

    rt.spawn(body("a"), pool)
    rt.spawn(body("b"), pool)
    sim.run(until=10.0)
    assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


def test_context_switch_cost_advances_time():
    sim, rt, pool = make_runtime(n_es=1, ctx_cost=0.1)
    ticks = []

    def body():
        for _ in range(3):
            ticks.append(sim.now)
            yield YieldNow()

    rt.spawn(body(), pool)
    sim.run(until=10.0)
    # Each dispatch costs 0.1, so resumes are strictly spaced.
    assert ticks == pytest.approx([0.1, 0.2, 0.3])


def test_es_busy_time_accounting():
    sim, rt, pool = make_runtime(n_es=1)
    es = rt.xstreams[0]

    def body():
        yield Compute(2.5)

    rt.spawn(body(), pool)
    sim.run(until=10.0)
    assert es.busy_time == pytest.approx(2.5)


def test_ult_error_propagates_by_default():
    sim, rt, pool = make_runtime()

    def bad():
        yield Compute(1.0)
        raise ValueError("broken handler")

    rt.spawn(bad(), pool)
    with pytest.raises(ValueError, match="broken handler"):
        sim.run(until=10.0)


def test_ult_error_swallowed_when_configured():
    sim, rt, pool = make_runtime(swallow_ult_errors=True)

    def bad():
        yield Compute(1.0)
        raise ValueError("broken handler")

    ult = rt.spawn(bad(), pool)
    sim.run(until=10.0)
    assert ult.terminated
    assert isinstance(ult.error, ValueError)


def test_join_returns_result():
    sim, rt, pool = make_runtime(n_es=2)
    out = []

    def child():
        yield Compute(3.0)
        return 42

    def parent():
        c = rt.spawn(child(), pool)
        value = yield from rt.join(c)
        out.append((value, sim.now))

    rt.spawn(parent(), pool)
    sim.run(until=10.0)
    assert out == [(42, 3.0)]


def test_join_already_terminated():
    sim, rt, pool = make_runtime(n_es=1)
    out = []

    def child():
        yield Compute(1.0)
        return "early"

    c = rt.spawn(child(), pool)

    def parent():
        yield Compute(5.0)
        value = yield from rt.join(c)
        out.append((value, sim.now))

    rt.spawn(parent(), pool)
    sim.run(until=20.0)
    assert out == [("early", 6.0)]


def test_join_reraises_child_error():
    sim, rt, pool = make_runtime(n_es=2, swallow_ult_errors=True)
    caught = []

    def child():
        yield Compute(1.0)
        raise RuntimeError("child died")

    def parent():
        c = rt.spawn(child(), pool)
        try:
            yield from rt.join(c)
        except RuntimeError as exc:
            caught.append(str(exc))

    rt.spawn(parent(), pool)
    sim.run(until=10.0)
    assert caught == ["child died"]


def test_join_all_collects_in_order():
    sim, rt, pool = make_runtime(n_es=4)
    out = []

    def child(tag, dur):
        yield Compute(dur)
        return tag

    def parent():
        kids = [rt.spawn(child(t, 3.0 - t), pool) for t in range(3)]
        results = yield from rt.join_all(kids)
        out.append(results)

    rt.spawn(parent(), pool)
    sim.run(until=10.0)
    assert out == [[0, 1, 2]]


def test_spawn_counters():
    sim, rt, pool = make_runtime(n_es=1)

    def body():
        yield Compute(1.0)

    for _ in range(4):
        rt.spawn(body(), pool)
    assert rt.total_spawned == 4
    assert rt.num_active == 4
    sim.run(until=10.0)
    assert rt.total_finished == 4
    assert rt.num_active == 0


def test_pool_high_watermark():
    sim, rt, pool = make_runtime(n_es=1)

    def body():
        yield Compute(1.0)

    for _ in range(5):
        rt.spawn(body(), pool)
    assert pool.high_watermark == 5


def test_shutdown_stops_idle_es():
    sim, rt, pool = make_runtime(n_es=2)

    def body():
        yield Compute(1.0)

    rt.spawn(body(), pool)
    sim.run(until=5.0)
    rt.shutdown()
    sim.run()
    # All ES kernel tasks finished; no pending events remain.
    assert sim.pending_events == 0


def test_ult_local_storage():
    sim, rt, pool = make_runtime(n_es=1)
    seen = []

    def body():
        me = rt.self_ult()
        me.local["callpath"] = 0xBEEF
        yield Compute(1.0)
        seen.append(rt.self_ult().local["callpath"])

    rt.spawn(body(), pool)
    sim.run(until=10.0)
    assert seen == [0xBEEF]


def test_self_ult_is_none_outside_execution():
    sim, rt, pool = make_runtime()
    assert rt.self_ult() is None


def test_num_ready_and_blocked_counters():
    sim, rt, pool = make_runtime(n_es=1)
    ev = rt.eventual()
    snap = {}

    def blocker():
        yield from ev.wait()

    def observer():
        yield Compute(1.0)
        snap["blocked"] = rt.num_blocked
        ev.signal("go")
        yield Compute(1.0)
        snap["after"] = rt.num_blocked

    rt.spawn(blocker(), pool)
    rt.spawn(observer(), pool)
    sim.run(until=10.0)
    assert snap["blocked"] == 1
    assert snap["after"] == 0
