"""Zipkin v2 JSON export: round-trips, required fields, and cross-
process parent/child stitching (satellite of the observability PR)."""

import json

from repro.symbiosys import FaultAnnotation, Stage
from repro.symbiosys.analysis import trace_summary
from repro.symbiosys.zipkin import span_to_zipkin, to_zipkin_json
from .conftest import drive_requests, make_instrumented_world

#: Fields Zipkin v2 requires (or the UI effectively requires) per span.
_REQUIRED = ("traceId", "id", "name", "timestamp", "localEndpoint")


def run_summary(n=2):
    world = make_instrumented_world(Stage.FULL)
    results = drive_requests(world, n)
    world.sim.run(until=1.0)
    assert len(results) == n
    return trace_summary(world.collector)


def test_zipkin_round_trips_through_json():
    summary = run_summary()
    text = to_zipkin_json(summary.requests.values())
    spans = json.loads(text)
    assert isinstance(spans, list) and spans
    # 3 spans per request: front_op + two nested leaf_op calls.
    assert len(spans) == 3 * len(summary.requests)
    # Serialization is deterministic.
    assert text == to_zipkin_json(summary.requests.values())


def test_zipkin_spans_carry_required_v2_fields():
    spans = json.loads(to_zipkin_json(run_summary().requests.values()))
    for span in spans:
        for field in _REQUIRED:
            assert field in span, f"span missing {field}"
        assert len(span["traceId"]) == 16
        assert len(span["id"]) == 16
        int(span["id"], 16)  # hex-encoded
        assert span["kind"] == "CLIENT"
        assert isinstance(span["timestamp"], int)
        assert span["duration"] >= 1  # Zipkin rejects 0-duration spans
        assert span["localEndpoint"]["serviceName"]
        assert span["tags"]["callpath"].startswith("0x")


def test_zipkin_parent_child_stitching_across_processes():
    summary = run_summary(n=1)
    spans = json.loads(to_zipkin_json(summary.requests.values()))
    roots = [s for s in spans if "parentId" not in s]
    children = [s for s in spans if "parentId" in s]
    assert len(roots) == 1 and len(children) == 2
    root = roots[0]
    # The root originates at the client and targets the front service;
    # its children originate at front (a different process) and target
    # back -- the cross-process stitch the paper's Figure 5 shows.
    assert root["name"] == "front_op"
    assert root["localEndpoint"]["serviceName"] == "cli"
    assert root["remoteEndpoint"]["serviceName"] == "front"
    for child in children:
        assert child["parentId"] == root["id"]
        assert child["traceId"] == root["traceId"]
        assert child["name"] == "leaf_op"
        assert child["localEndpoint"]["serviceName"] == "front"
        assert child["remoteEndpoint"]["serviceName"] == "back"
        # Children nest inside the parent's window.
        assert child["timestamp"] >= root["timestamp"]
        assert (
            child["timestamp"] + child["duration"]
            <= root["timestamp"] + root["duration"]
        )
    # The target-side annotations (t5/t8) made it through.
    values = {a["value"] for a in root["annotations"]}
    assert "target ULT start (t5)" in values
    assert "target respond (t8)" in values


def test_zipkin_surfaces_fault_annotations():
    summary = run_summary(n=1)
    (request,) = summary.requests.values()
    span = request.roots[0]
    midpoint = (span.t1 + span.t14) / 2
    span.faults.append(FaultAnnotation(midpoint, "delay", ("cli", "front")))
    record = span_to_zipkin(span, "0" * 16)
    assert record["tags"]["faults"] == "1"
    values = [a["value"] for a in record["annotations"]]
    assert any(v.startswith("fault:delay") for v in values)


def test_zipkin_empty_requests_export():
    assert json.loads(to_zipkin_json([])) == []
