"""Simulated Margo layer (DESIGN.md §2 item 5)."""

from .errors import MargoError, MargoTimeoutError, RemoteRpcError
from .hooks import CompositeInstrumentation, Instrumentation, NullInstrumentation
from .instance import MargoConfig, MargoInstance, ProcessStats
from .retry import RetryPolicy

__all__ = [
    "CompositeInstrumentation",
    "Instrumentation",
    "MargoConfig",
    "MargoError",
    "MargoInstance",
    "MargoTimeoutError",
    "NullInstrumentation",
    "ProcessStats",
    "RemoteRpcError",
    "RetryPolicy",
]
