"""BAKE: a microservice for storing and retrieving object blobs.

Blob regions live in (simulated NVM) memory; writes pull data from the
client through Mercury's bulk interface, reads push it back the same
way.  ``persist`` charges the NVM flush cost.  The data paths are real:
what a client writes is what a later read returns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoInstance
from ..mercury import BulkRef, HGHandle

__all__ = ["BakeCosts", "BakeProvider", "BakeClient", "BakeRegion"]

RPC_CREATE = "bake_create_rpc"
RPC_WRITE = "bake_write_rpc"
RPC_PERSIST = "bake_persist_rpc"
RPC_CREATE_WRITE_PERSIST = "bake_create_write_persist_rpc"
RPC_READ = "bake_read_rpc"
RPC_GET_SIZE = "bake_get_size_rpc"
_ALL_RPCS = (
    RPC_CREATE,
    RPC_WRITE,
    RPC_PERSIST,
    RPC_CREATE_WRITE_PERSIST,
    RPC_READ,
    RPC_GET_SIZE,
)

_region_ids = itertools.count(1)


@dataclass(frozen=True)
class BakeCosts:
    create_fixed: float = 0.8e-6
    write_fixed: float = 0.5e-6
    write_per_byte: float = 0.05e-9  # memcpy into region
    persist_fixed: float = 2.0e-6
    persist_per_byte: float = 0.25e-9  # NVM flush
    read_fixed: float = 0.5e-6
    read_per_byte: float = 0.04e-9


@dataclass
class BakeRegion:
    rid: int
    capacity: int
    data: dict[int, bytes]  # offset -> fragment
    persisted: bool = False

    @property
    def used(self) -> int:
        return sum(len(frag) for frag in self.data.values())


class BakeProvider:
    """Server-side BAKE provider."""

    def __init__(
        self,
        mi: MargoInstance,
        provider_id: int = 0,
        costs: Optional[BakeCosts] = None,
    ):
        self.mi = mi
        self.provider_id = provider_id
        self.costs = costs or BakeCosts()
        self.regions: dict[int, BakeRegion] = {}
        mi.register(RPC_CREATE, self._h_create, provider_id)
        mi.register(RPC_WRITE, self._h_write, provider_id)
        mi.register(RPC_PERSIST, self._h_persist, provider_id)
        mi.register(RPC_CREATE_WRITE_PERSIST, self._h_cwp, provider_id)
        mi.register(RPC_READ, self._h_read, provider_id)
        mi.register(RPC_GET_SIZE, self._h_get_size, provider_id)

    def _region(self, rid: int) -> BakeRegion:
        try:
            return self.regions[rid]
        except KeyError:
            raise ValueError(f"unknown BAKE region {rid}") from None

    # -- handlers ----------------------------------------------------------------

    def _h_create(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(self.costs.create_fixed)
        rid = next(_region_ids)
        self.regions[rid] = BakeRegion(rid=rid, capacity=inp["size"], data={})
        yield from mi.respond(handle, {"ret": 0, "rid": rid})

    def _do_write(self, mi, handle, region, offset, bulk: BulkRef) -> Generator:
        if offset + bulk.nbytes > region.capacity:
            raise ValueError(
                f"write past region end: {offset}+{bulk.nbytes} > "
                f"{region.capacity}"
            )
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        yield Compute(
            self.costs.write_fixed + self.costs.write_per_byte * bulk.nbytes
        )
        region.data[offset] = bulk.data
        mi.stats.add_memory(bulk.nbytes)

    def _h_write(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        region = self._region(inp["rid"])
        yield from self._do_write(mi, handle, region, inp["offset"], inp["bulk"])
        yield from mi.respond(handle, {"ret": 0})

    def _do_persist(self, region) -> Generator:
        yield Compute(
            self.costs.persist_fixed + self.costs.persist_per_byte * region.used
        )
        region.persisted = True

    def _h_persist(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        region = self._region(inp["rid"])
        yield from self._do_persist(region)
        yield from mi.respond(handle, {"ret": 0})

    def _h_cwp(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(self.costs.create_fixed)
        rid = next(_region_ids)
        bulk: BulkRef = inp["bulk"]
        region = self.regions[rid] = BakeRegion(
            rid=rid, capacity=bulk.nbytes, data={}
        )
        yield from self._do_write(mi, handle, region, 0, bulk)
        yield from self._do_persist(region)
        yield from mi.respond(handle, {"ret": 0, "rid": rid})

    def _h_read(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        region = self._region(inp["rid"])
        fragment = region.data.get(inp["offset"])
        if fragment is None:
            yield from mi.respond(handle, {"ret": -1, "bulk": None})
            return
        nbytes = len(fragment)
        yield Compute(self.costs.read_fixed + self.costs.read_per_byte * nbytes)
        # Push the data back to the origin over RDMA.
        yield from mi.bulk_transfer(handle, nbytes)
        yield from mi.respond(handle, {"ret": 0, "bulk": BulkRef(fragment, 0)})

    def _h_get_size(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        region = self._region(inp["rid"])
        yield Compute(self.costs.read_fixed)
        yield from mi.respond(handle, {"ret": 0, "size": region.used})


class BakeClient:
    """Client-side BAKE wrapper."""

    def __init__(self, mi: MargoInstance):
        self.mi = mi
        for rpc in _ALL_RPCS:
            mi.register(rpc)

    def create(self, target: str, provider_id: int, size: int) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_CREATE, {"size": size}, provider_id
        )
        return out["rid"]

    def write(
        self, target: str, provider_id: int, rid: int, offset: int, data: bytes
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_WRITE,
            {"rid": rid, "offset": offset, "bulk": BulkRef(data, len(data))},
            provider_id,
        )
        return out["ret"]

    def persist(self, target: str, provider_id: int, rid: int) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_PERSIST, {"rid": rid}, provider_id
        )
        return out["ret"]

    def create_write_persist(
        self, target: str, provider_id: int, data: bytes
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_CREATE_WRITE_PERSIST,
            {"bulk": BulkRef(data, len(data))},
            provider_id,
        )
        return out["rid"]

    def read(
        self, target: str, provider_id: int, rid: int, offset: int = 0
    ) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_READ, {"rid": rid, "offset": offset}, provider_id
        )
        if out["ret"] != 0:
            return None
        return out["bulk"].data

    def get_size(self, target: str, provider_id: int, rid: int) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_GET_SIZE, {"rid": rid}, provider_id
        )
        return out["size"]
