"""Command-line entry: ``python -m repro.validate <command>``.

Commands
--------

``fuzz``
    Sweep seeds x workloads x presets, each config run twice (export
    determinism cross-check) under invariant checking.  ``--smoke`` is
    the small CI matrix.  On failure the shrunk minimal config is
    written to ``--repro`` and the exit code is 1.

``churn``
    Membership-churn campaigns over the sharded service: randomized
    kill/revive sequences, each run twice, with the conservation audit
    (no silent drops, bytes conserved across migrations) and a
    determinism cross-check on the audit/event fingerprints.

``golden``
    Check the golden-trace corpus (or ``--regen`` it after intentional
    behaviour changes).  Mismatches print a readable summary diff and
    exit 1.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import fuzz_sweep, load_repro, check_config

    if args.replay is not None:
        try:
            config = load_repro(args.replay)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load repro file: {exc}")
            return 2
        print(f"replaying {config.describe()}")
        detail = check_config(config)
        if detail is None:
            print("replay passed (failure no longer reproduces)")
            return 0
        print(f"replay FAILED: {detail}")
        return 1

    if args.smoke:
        seeds = range(3)
        workloads = ("echo", "sonata")
        presets = ("fast",)
    else:
        seeds = range(args.seeds)
        workloads = tuple(args.workloads.split(","))
        presets = tuple(args.presets.split(","))

    result = fuzz_sweep(
        seeds=seeds,
        workloads=workloads,
        presets=presets,
        fault_fraction=args.fault_fraction,
        repro_path=args.repro,
        log=print,
        jobs=args.jobs,
    )
    print(
        f"fuzz: {result.configs_run} config(s) run, "
        f"{len(result.failures)} failure(s)"
    )
    for failure in result.failures:
        print(f"  {failure.kind}: {failure.detail}")
        if failure.shrunk is not None:
            print(f"  minimal repro: {failure.shrunk.describe()}")
    return 0 if result.ok else 1


def _cmd_churn(args: argparse.Namespace) -> int:
    from .churn import ChurnConfig, check_churn_config, churn_sweep

    if getattr(args, "workers", None) is not None and args.workers > 1:
        # Kill/revive sequences rewrite membership fleet-wide --
        # cross-LP churn is a parallel-kernel non-goal (see
        # docs/performance.md section 7).
        print(
            f"[churn: --workers {args.workers} falls back to the "
            "serial kernel (membership churn cannot cross LPs)]",
            file=sys.stderr,
        )

    if args.replay is not None:
        try:
            with open(args.replay) as f:
                payload = json.load(f)
            config = ChurnConfig.from_dict(payload["config"])
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load churn repro file: {exc}")
            return 2
        print(f"replaying {config.describe()}")
        detail = check_churn_config(config)
        if detail is None:
            print("replay passed (failure no longer reproduces)")
            return 0
        print(f"replay FAILED: {detail}")
        return 1

    seeds = range(3) if args.smoke else range(args.seeds)
    result = churn_sweep(
        seeds=seeds,
        fault_fraction=args.fault_fraction,
        repro_path=args.repro,
        log=print,
    )
    print(
        f"churn: {result.configs_run} campaign(s) run, "
        f"{len(result.failures)} failure(s)"
    )
    for config, detail in result.failures:
        print(f"  {detail}")
        print(f"  config: {config.describe()}")
    return 0 if result.ok else 1


def _cmd_golden(args: argparse.Namespace) -> int:
    from .golden import check_golden, corpus_path, regen_golden

    services = args.services.split(",") if args.services else None
    if args.regen:
        corpus = regen_golden(services=services)
        print(f"regenerated {len(corpus)} golden entrie(s) at {corpus_path()}")
        return 0
    mismatches = check_golden(services=services)
    if not mismatches:
        print("golden corpus: all services match")
        return 0
    for mismatch in mismatches:
        print(mismatch.render())
    print(
        f"golden corpus: {len(mismatches)} mismatch(es); if intentional, "
        "run `python -m repro.validate golden --regen`"
    )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Correctness tooling: fuzzing and golden-trace checks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="seed/fault fuzz with shrinking")
    p_fuzz.add_argument("--smoke", action="store_true", help="small CI matrix")
    p_fuzz.add_argument("--seeds", type=int, default=8, help="seeds per cell")
    p_fuzz.add_argument(
        "--workloads", default="echo,sonata", help="comma-separated workloads"
    )
    p_fuzz.add_argument(
        "--presets", default="fast", help="comma-separated presets (fast,theta)"
    )
    p_fuzz.add_argument(
        "--fault-fraction",
        type=float,
        default=0.5,
        help="fraction of configs that get a random fault plan",
    )
    p_fuzz.add_argument(
        "--repro",
        default="fuzz-repro.json",
        help="where to write the shrunk failing config",
    )
    p_fuzz.add_argument(
        "--replay", default=None, help="replay a previously written repro file"
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the config checks (result is "
        "identical to --jobs 1; shrinking stays sequential)",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_churn = sub.add_parser(
        "churn", help="membership-churn campaigns over the sharded service"
    )
    p_churn.add_argument("--smoke", action="store_true", help="small CI matrix")
    p_churn.add_argument("--seeds", type=int, default=8, help="campaign seeds")
    p_churn.add_argument(
        "--fault-fraction",
        type=float,
        default=0.75,
        help="fraction of campaigns that get a random kill/revive plan",
    )
    p_churn.add_argument(
        "--repro",
        default="churn-repro.json",
        help="where to write a failing campaign config",
    )
    p_churn.add_argument(
        "--replay", default=None, help="replay a previously written repro file"
    )
    p_churn.add_argument(
        "--workers",
        type=int,
        default=None,
        help="accepted for CLI symmetry; churn campaigns mutate "
        "membership across the whole fleet, a parallel-kernel "
        "non-goal, so they always run on the serial kernel",
    )
    p_churn.set_defaults(func=_cmd_churn)

    p_golden = sub.add_parser("golden", help="golden-trace corpus check")
    p_golden.add_argument(
        "--regen", action="store_true", help="rewrite the corpus from fresh runs"
    )
    p_golden.add_argument(
        "--services", default=None, help="comma-separated subset to run"
    )
    p_golden.set_defaults(func=_cmd_golden)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
