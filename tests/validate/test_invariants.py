"""Invariant-checker behaviour: clean runs stay silent, corrupted runs
are caught, and a caught scheduler corruption shrinks to a minimal
reproducing config (the tentpole acceptance path)."""

import pytest

from repro.faults import DelayRule, DropRule, FaultPlan
from repro.validate import (
    InvariantMonitor,
    InvariantViolationError,
    ValidationConfig,
)
from repro.validate.fuzz import (
    FailureReport,
    FuzzConfig,
    load_repro,
    shrink,
    write_repro,
)
from repro.validate.workloads import run_workload

from tests.conftest import make_echo_cluster


def run_validated_echo(*, validate=True, n_calls=3, **cluster_kw):
    world = make_echo_cluster(validate=validate, **cluster_kw)
    results = []

    def body():
        for i in range(n_calls):
            out = yield from world.client.forward("svr", "echo", {"i": i})
            results.append(out)

    world.client.client_ult(body(), name="load")
    assert world.sim.run_until(lambda: len(results) == n_calls, limit=2.0)
    return world, results


def test_clean_run_records_no_violations():
    world, results = run_validated_echo()
    world.cluster.shutdown()  # strict: raises if anything was recorded
    assert len(results) == 3
    assert world.cluster.validator.ok
    assert world.cluster.leaked_events == 0


def test_validated_run_is_a_pure_observer():
    """Validation must not perturb the run: same makespan either way."""

    def makespan(validate):
        world, _ = run_validated_echo(validate=validate)
        at = world.sim.now
        world.cluster.shutdown()
        return at

    assert makespan(True) == makespan(False)


def test_terminated_ult_rescheduled_is_caught():
    artifacts = run_workload("echo", seed=3, scale=1, _corrupt_sched=True)
    kinds = {v.invariant for v in artifacts.violations}
    assert "ult_state_machine" in kinds
    offender = next(
        v for v in artifacts.violations if v.invariant == "ult_state_machine"
    )
    assert "terminated ULT scheduled again" in offender.message
    assert offender.process  # localized to a process
    assert offender.callpath  # and to a ULT name


def test_corrupted_scheduler_transition_shrinks_to_minimal_config(tmp_path):
    """The acceptance path: a scheduler corruption is caught by the
    invariant monitor and the failing config shrinks to the minimal
    reproducer (no fault plan, scale 1), written as a repro file."""
    plan = FaultPlan(
        name="noise",
        wire_rules=[
            DropRule(dst="echo-svr", kind="rpc_request", probability=0.05),
            DelayRule(dst="echo-svr", extra=50e-6, probability=0.1),
        ],
    )
    config = FuzzConfig(seed=5, workload="echo", scale=4, plan=plan)

    def is_failing(cfg):
        artifacts = run_workload(
            cfg.workload,
            seed=cfg.seed,
            preset=cfg.preset,
            scale=cfg.scale,
            plan=cfg.plan,
            _corrupt_sched=True,
        )
        return any(
            v.invariant == "ult_state_machine" for v in artifacts.violations
        )

    assert is_failing(config)
    shrunk = shrink(config, is_failing)
    assert shrunk.plan is None  # every fault rule was irrelevant
    assert shrunk.scale == 1  # and so was the workload size
    assert is_failing(shrunk)

    repro = tmp_path / "repro.json"
    report = FailureReport(
        config=config,
        kind="invariant",
        detail="ult_state_machine",
        shrunk=shrunk,
    )
    write_repro(report, str(repro))
    assert load_repro(str(repro)) == shrunk


def test_pool_tamper_breaks_conservation():
    world, _ = run_validated_echo(
        validate=ValidationConfig(strict=False)
    )
    # Fake a push that never happened: counter moves, depth does not.
    world.server.primary_pool.total_pushed += 1
    world.cluster.shutdown()
    violations = world.cluster.validator.violations
    assert any(v.invariant == "pool_conservation" for v in violations)
    offender = next(
        v for v in violations if v.invariant == "pool_conservation"
    )
    assert offender.process == "svr"


def test_undrained_posted_handle_is_flagged_strictly():
    world = make_echo_cluster(validate=True)
    failed = []

    def body():
        try:
            yield from world.client.forward("svr", "echo", {"i": 0})
        except Exception as exc:  # noqa: BLE001 - recording only
            failed.append(exc)

    # Crash the server before the request lands: the posted handle can
    # never complete and the drain check must flag it.
    world.server.crash()
    world.client.client_ult(body(), name="doomed")
    world.sim.run(until=world.sim.now + 5e-3)
    with pytest.raises(InvariantViolationError) as excinfo:
        world.cluster.shutdown()
    assert any(
        v.invariant == "drain_on_exit" for v in excinfo.value.violations
    )


def test_fault_campaigns_relax_drain_checks():
    """With an injector armed, stranded handles are expected outcomes."""
    from repro.faults import CrashFault

    plan = FaultPlan(
        name="kill", process_faults=[CrashFault(addr="svr", at=1e-6)]
    )
    world = make_echo_cluster(plan=plan, validate=True)
    failed = []

    def body():
        try:
            yield from world.client.forward("svr", "echo", {"i": 0}, timeout=1e-3)
        except Exception as exc:  # noqa: BLE001 - recording only
            failed.append(exc)

    world.client.client_ult(body(), name="doomed")
    world.sim.run_until(lambda: failed, limit=1.0)
    world.cluster.shutdown()  # must not raise despite the stranded state
    assert failed


def test_clock_monotonicity_checker_unit():
    from repro.sim import Simulator

    monitor = InvariantMonitor(Simulator(), config=ValidationConfig(strict=False))
    monitor.observe_time(1.0, "p")
    monitor.observe_time(2.0, "p")
    assert monitor.ok
    monitor.observe_time(1.5, "p", callpath="rewind")
    assert not monitor.ok
    (violation,) = monitor.violations
    assert violation.invariant == "clock_monotonicity"
    assert violation.callpath == "rewind"


def test_rpc_lifecycle_checker_unit():
    from repro.mercury.core import HGHandle
    from repro.sim import Simulator
    from repro.validate.invariants import _RpcLifecycleChecker, _TARGET_ORDER

    class _FakeMi:
        addr = "svr"

    monitor = InvariantMonitor(Simulator(), config=ValidationConfig(strict=False))
    checker = _RpcLifecycleChecker(monitor, _FakeMi())
    handle = HGHandle(1, "echo", "cli", "svr", is_origin=False)
    handle.marks.update({"t4": 1.0, "t5": 2.0, "t8": 1.5})  # t8 < t5
    checker._check_order(handle, _TARGET_ORDER)
    assert not monitor.ok
    (violation,) = monitor.violations
    assert violation.invariant == "rpc_lifecycle"
    assert "t8" in violation.message


def test_violation_report_is_readable():
    artifacts = run_workload("echo", seed=3, scale=1, _corrupt_sched=True)
    assert artifacts.violations
    line = artifacts.violations[0].render()
    assert "ms" in line and "ult_state_machine" in line
