"""ior + Mobject experiment harness (Figures 5 and 6).

One Mobject provider node with 10 ior clients colocated on the same
physical node, exactly as §V-A: writes then reads.  Produces the
dominant-callpath profile summary (Fig 6) and a stitched Zipkin trace of
a single ``mobject_write_op`` showing its 12 discrete steps (Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..margo import MargoInstance
from ..net import Fabric
from ..services.mobject import MobjectProviderNode
from ..sim import Simulator
from ..symbiosys import Stage, SymbiosysCollector
from ..symbiosys.analysis import (
    ProfileSummary,
    TraceSummary,
    profile_summary,
    trace_summary,
)
from ..symbiosys.zipkin import request_to_zipkin
from ..workloads import IorClient, IorConfig, run_ior_clients
from .presets import FAST_TEST, Preset

__all__ = ["MobjectExperimentResult", "run_mobject_experiment"]


@dataclass
class MobjectExperimentResult:
    collector: SymbiosysCollector
    makespan: float
    clients: list[IorClient]

    @property
    def summary(self) -> ProfileSummary:
        return profile_summary(self.collector)

    @property
    def traces(self) -> TraceSummary:
        return trace_summary(self.collector)

    def write_op_trace(self) -> Optional[object]:
        """One complete mobject_write_op request trace (for Fig 5)."""
        for req in self.traces.requests.values():
            if req.roots and req.roots[0].rpc_name == "mobject_write_op":
                if all(s.complete for s in req.roots[0].walk()):
                    return req
        return None

    def write_op_zipkin(self) -> list[dict]:
        req = self.write_op_trace()
        if req is None:
            raise RuntimeError("no complete mobject_write_op trace captured")
        return request_to_zipkin(req)


def run_mobject_experiment(
    *,
    n_clients: int = 10,
    ior_config: Optional[IorConfig] = None,
    stage: Stage = Stage.FULL,
    preset: Preset = FAST_TEST,
    n_handler_es: int = 8,
    time_limit: float = 60.0,
) -> MobjectExperimentResult:
    sim = Simulator()
    fabric = Fabric(sim, preset.fabric)
    collector = SymbiosysCollector(stage)

    provider = MobjectProviderNode(
        sim,
        fabric,
        "mobject0",
        "node0",
        n_handler_es=n_handler_es,
        sdskv_costs=preset.map_costs,
        instrumentation=collector.create_instrumentation(),
    )
    clients = []
    for rank in range(n_clients):
        mi = MargoInstance(
            sim,
            fabric,
            f"ior{rank}",
            "node0",  # colocated with the provider node
            serialization=preset.serialization,
            ctx_switch_cost=preset.ctx_switch_cost,
            instrumentation=collector.create_instrumentation(),
        )
        clients.append(
            IorClient(mi, "mobject0", rank, ior_config or IorConfig())
        )
    all_done = run_ior_clients(clients)

    finished = sim.run_until_event(all_done, limit=time_limit)
    if not finished:
        raise RuntimeError("ior clients did not finish in time")
    for c in clients:
        if c.write_errors or c.read_mismatches:
            raise RuntimeError(
                f"ior rank {c.rank}: {c.write_errors} write errors, "
                f"{c.read_mismatches} read mismatches"
            )
    return MobjectExperimentResult(
        collector=collector,
        makespan=max(c.finished_at for c in clients),
        clients=clients,
    )
