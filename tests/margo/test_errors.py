"""Tests for Margo RPC error propagation and forward timeouts."""

import pytest

import repro.argobots as abt
from repro.margo import MargoTimeoutError, RemoteRpcError
from .conftest import echo_handler, make_pair, run_client_calls


def test_handler_exception_travels_to_origin():
    world = make_pair()

    def bad_handler(mi, handle):
        yield from mi.get_input(handle)
        raise ValueError("backend exploded")

    world.server.register("bad", bad_handler)
    world.client.register("bad")
    caught = []

    def body():
        try:
            yield from world.client.forward("svr", "bad", {})
        except RemoteRpcError as exc:
            caught.append(exc)

    world.client.client_ult(body())
    world.sim.run_until(lambda: caught, limit=1.0)
    (exc,) = caught
    assert "backend exploded" in exc.detail
    assert exc.rpc_name == "bad"
    assert exc.target == "svr"


def test_server_survives_handler_exception():
    """One poisoned request must not take the server down."""
    world = make_pair()

    def sometimes_bad(mi, handle):
        inp = yield from mi.get_input(handle)
        if inp["i"] == 2:
            raise RuntimeError("poison")
        yield from mi.respond(handle, inp["i"])

    world.server.register("op", sometimes_bad)
    world.client.register("op")
    ok, errors = [], []

    def body(i):
        try:
            out = yield from world.client.forward("svr", "op", {"i": i})
            ok.append(out)
        except RemoteRpcError:
            errors.append(i)

    for i in range(5):
        world.client.client_ult(body(i))
    world.sim.run_until(lambda: len(ok) + len(errors) == 5, limit=1.0)
    assert sorted(ok) == [0, 1, 3, 4]
    assert errors == [2]
    assert len(world.server.handler_errors) == 1
    assert world.server.handler_errors[0][0] == "op"


def test_exception_after_respond_is_logged_not_resent():
    world = make_pair()

    def late_failure(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.respond(handle, "fine")
        raise RuntimeError("cleanup failed")

    world.server.register("late", late_failure)
    world.client.register("late")
    results = run_client_calls(world, [("late", {})])
    world.sim.run_until(lambda: results, limit=1.0)
    assert results == ["fine"]  # client saw the successful response
    assert len(world.server.handler_errors) == 1


def test_forward_timeout_raises_and_cancels():
    world = make_pair()

    def glacial(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(1.0)  # way past the timeout
        yield from mi.respond(handle, "too late")

    world.server.register("slow", glacial)
    world.client.register("slow")
    caught = []

    def body():
        try:
            yield from world.client.forward("svr", "slow", {}, timeout=1e-3)
        except MargoTimeoutError as exc:
            caught.append(exc)

    world.client.client_ult(body())
    world.sim.run_until(lambda: caught, limit=0.01)
    (exc,) = caught
    assert exc.timeout == 1e-3
    # The late response must be dropped harmlessly.
    world.sim.run(until=1.5)
    assert len(world.client.hg._posted) == 0


def test_late_response_counted_and_fully_cleaned_up():
    """A response landing after its handle timed out increments the
    degraded-mode gauge and leaves no posted or cancelled state behind."""
    world = make_pair()

    def glacial(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(10e-3)
        yield from mi.respond(handle, "too late")

    world.server.register("slow", glacial)
    world.client.register("slow")
    caught = []

    def body():
        try:
            yield from world.client.forward("svr", "slow", {}, timeout=1e-3)
        except MargoTimeoutError as exc:
            caught.append(exc)

    world.client.client_ult(body())
    world.sim.run_until(lambda: caught, limit=0.01)
    assert world.client.resilience_counters()["num_forward_timeouts"] == 1
    assert world.client.resilience_counters()["num_late_responses_dropped"] == 0
    world.sim.run(until=0.1)  # let the late response arrive
    counters = world.client.resilience_counters()
    assert counters["num_late_responses_dropped"] == 1
    assert len(world.client.hg._posted) == 0
    assert len(world.client.hg._cancelled) == 0
    # No retry loop was involved, so those gauges stay untouched.
    assert counters["num_forward_retries"] == 0
    assert counters["num_failed_over_forwards"] == 0


def test_forward_within_timeout_succeeds():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    results = []

    def body():
        out = yield from world.client.forward(
            "svr", "echo", {"x": 1}, timeout=0.1
        )
        results.append(out)

    world.client.client_ult(body())
    world.sim.run_until(lambda: results, limit=1.0)
    assert results == [{"echo": {"x": 1}}]


def test_timeout_then_retry_pattern():
    """The classic client pattern: timeout, then retry successfully."""
    world = make_pair()
    state = {"calls": 0}

    def flaky(mi, handle):
        yield from mi.get_input(handle)
        state["calls"] += 1
        if state["calls"] == 1:
            yield abt.Compute(50e-3)  # first call stalls
        yield from mi.respond(handle, state["calls"])

    world.server.register("flaky", flaky)
    world.client.register("flaky")
    outcome = []

    def body():
        for attempt in range(3):
            try:
                out = yield from world.client.forward(
                    "svr", "flaky", {}, timeout=5e-3
                )
                outcome.append(("ok", out, attempt))
                return
            except MargoTimeoutError:
                continue
        outcome.append(("gave-up", None, 3))

    world.client.client_ult(body())
    world.sim.run_until(lambda: outcome, limit=1.0)
    status, out, attempt = outcome[0]
    assert status == "ok"
    assert attempt == 1  # first retry succeeded
    assert out == 2


def test_error_payload_key_is_reserved():
    """A handler's legitimate dict response may not collide with the
    error marker -- the wrapper only sets it on failure, so a normal
    response passes through untouched."""
    world = make_pair()

    def handler(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.respond(handle, {"data": 42})

    world.server.register("normal", handler)
    world.client.register("normal")
    results = run_client_calls(world, [("normal", {})])
    world.sim.run_until(lambda: results, limit=1.0)
    assert results == [{"data": 42}]
