"""Sharded KV service: per-shard databases with ownership fencing.

Every server process hosts one :class:`ShardKvProvider` holding the
shards the placement map assigns to it, each shard a full SDSKV backend
database.  Ownership is fenced by *data presence*: a request for a
shard the server does not hold is answered with ``ret == -2`` and a
redirect hint — never silently acked and never silently dropped — so a
put can only succeed on the process that actually stores the shard.
That makes the migration protocol safe without distributed locks: the
source fences (drops the shard, leaves a tombstone pointing at the
destination) *before* the data moves, and clients chase redirects
through the eventually-consistent window.

:class:`ShardedKVService` deploys a whole fleet on a
:class:`~repro.cluster.Cluster`: servers with KV + BAKE providers, an
authoritative SSG group with heartbeat failure detection
(:class:`~repro.ssg.MembershipService`), fabric-delayed view
propagation to every server and router, and a
:class:`~repro.shard.migration.ShardManager` that turns view changes
into REMI-style migration ULTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoInstance
from ..mercury import BulkRef, HGHandle
from ..mercury.pvar import PvarBinding, PvarClass, PvarDef
from ..services.bake import BakeProvider
from ..services.sdskv.backends import BackendCosts, KVDatabase, make_database
from ..ssg import MembershipService, SSGGroup, ViewPropagator
from .placement import ShardMap
from .ring import HashRing

__all__ = ["PartitionedShardLP", "ShardKvProvider", "ShardedKVService"]

RPC_PUT = "shard_put"
RPC_GET = "shard_get"
RPC_INSTALL = "shard_install"
RPC_ASSIGN = "shard_assign"
_ALL_RPCS = (RPC_PUT, RPC_GET, RPC_INSTALL, RPC_ASSIGN)

#: Wrong-owner redirect: the caller must retry at ``owner`` (or refresh
#: its placement map when no hint is available yet).
RET_WRONG_OWNER = -2


class ShardKvProvider:
    """Server-side provider for the shards this process owns.

    ``shards`` maps shard index -> live backend database; ``forwards``
    holds tombstones (shard -> destination address) left behind by
    out-migrations so redirects point somewhere useful during the
    propagation window.
    """

    #: Unpacking cost of a bulk-pulled request (same model as SDSKV).
    unpack_fixed = 1.0e-6
    unpack_per_byte = 0.8e-9
    #: Cost of installing one migrated shard (REMI's per-file install).
    install_fixed = 1.5e-6
    install_per_byte = 0.15e-9

    def __init__(
        self,
        mi: MargoInstance,
        provider_id: int = 0,
        *,
        backend: str = "map",
        costs: Optional[BackendCosts] = None,
    ):
        self.mi = mi
        self.provider_id = provider_id
        self.backend = backend
        self.costs = costs
        self.shards: dict[int, KVDatabase] = {}
        self.forwards: dict[int, str] = {}
        #: This server's eventually consistent SSG view replica (set by
        #: the deploying service; feeds the ``ssg_view_epoch`` PVAR).
        self.replica: Optional[SSGGroup] = None
        #: Operations served per owned shard (hot-spot detector feed).
        self.ops_by_shard: dict[int, int] = {}
        mi.register(RPC_PUT, self._h_put, provider_id)
        mi.register(RPC_GET, self._h_get, provider_id)
        mi.register(RPC_INSTALL, self._h_install, provider_id)
        mi.register(RPC_ASSIGN, self._h_assign, provider_id)
        self._define_pvars()

    def _define_pvars(self) -> None:
        pvars = self.mi.hg.pvars
        P, B = PvarClass, PvarBinding
        for d in (
            PvarDef(
                "shard_num_owned",
                P.LEVEL,
                B.NO_OBJECT,
                "Shards currently stored on this process",
                getter=lambda: len(self.shards),
            ),
            PvarDef(
                "ssg_view_epoch",
                P.LEVEL,
                B.NO_OBJECT,
                "Epoch of the latest SSG view applied by this process",
                getter=lambda: self.replica.epoch if self.replica else 0,
            ),
            PvarDef(
                "shard_ops_total",
                P.COUNTER,
                B.NO_OBJECT,
                "Shard KV operations served by this process",
            ),
            PvarDef(
                "shard_redirects_total",
                P.COUNTER,
                B.NO_OBJECT,
                "Wrong-owner requests answered with a redirect",
            ),
            PvarDef(
                "shard_migrations_in",
                P.COUNTER,
                B.NO_OBJECT,
                "Shards installed by in-migration",
            ),
            PvarDef(
                "shard_migrations_out",
                P.COUNTER,
                B.NO_OBJECT,
                "Shards handed off by out-migration",
            ),
            PvarDef(
                "shard_migration_bytes_in",
                P.COUNTER,
                B.NO_OBJECT,
                "Bytes received through shard in-migrations",
            ),
            PvarDef(
                "shard_migration_bytes_out",
                P.COUNTER,
                B.NO_OBJECT,
                "Bytes pushed through shard out-migrations",
            ),
        ):
            pvars.define(d)
        self._pv_ops = pvars.bind_update("shard_ops_total")
        self._pv_redirects = pvars.bind_update("shard_redirects_total")
        self._pv_mig_in = pvars.bind_update("shard_migrations_in")
        self._pv_mig_out = pvars.bind_update("shard_migrations_out")
        self._pv_bytes_in = pvars.bind_update("shard_migration_bytes_in")
        self._pv_bytes_out = pvars.bind_update("shard_migration_bytes_out")

    # -- local (construction / admin-side) bookkeeping ---------------------

    def adopt_shard(self, shard: int) -> KVDatabase:
        """Create an empty shard database here (initial placement)."""
        if shard in self.shards:
            raise ValueError(f"shard {shard} already on {self.mi.addr}")
        db = make_database(
            self.backend, self.mi.rt, db_id=shard, costs=self.costs
        )
        self.shards[shard] = db
        self.forwards.pop(shard, None)
        return db

    def adopt_shard_ult(self, shard: int) -> Generator:
        """Failover adoption as a ULT on this process: start serving an
        empty shard whose data died with its previous owner.  Idempotent
        (a racing ``shard_install`` wins)."""
        yield Compute(self.install_fixed)
        if shard not in self.shards:
            self.shards[shard] = make_database(
                self.backend, self.mi.rt, db_id=shard, costs=self.costs
            )
            self.forwards.pop(shard, None)
            self.mi.hg.pvars.add_at(self._pv_mig_in, 1)
        return True

    def fence_shard(self, shard: int, dst: str) -> Optional[KVDatabase]:
        """Atomically stop serving ``shard`` and leave a tombstone
        pointing at ``dst``.  Returns the fenced database (None if the
        shard is not here).  Fencing happens *before* the data moves, so
        a put can never land on a copy about to be dropped."""
        db = self.shards.pop(shard, None)
        if db is not None:
            self.forwards[shard] = dst
        return db

    def wipe(self) -> None:
        """Model volatile-memory loss on a crash: every shard database
        and tombstone this process held is gone.  Called by the shard
        manager when the membership service evicts the process, so a
        later revival re-enters the ring empty instead of serving stale
        pre-crash data (which would create a second owner)."""
        self.shards.clear()
        self.forwards.clear()

    @property
    def owned_shards(self) -> list[int]:
        return sorted(self.shards)

    @property
    def bytes_stored(self) -> int:
        return sum(db.bytes_stored for db in self.shards.values())

    @property
    def total_items(self) -> int:
        return sum(len(db) for db in self.shards.values())

    def _count_op(self, shard: int) -> None:
        self.ops_by_shard[shard] = self.ops_by_shard.get(shard, 0) + 1
        self.mi.hg.pvars.add_at(self._pv_ops, 1)

    def _redirect(self, shard: int) -> dict:
        self.mi.hg.pvars.add_at(self._pv_redirects, 1)
        return {"ret": RET_WRONG_OWNER, "owner": self.forwards.get(shard)}

    # -- handlers ----------------------------------------------------------

    def _h_put(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        shard = inp["shard"]
        db = self.shards.get(shard)
        if db is None:
            yield from mi.respond(handle, self._redirect(shard))
            return
        before = db.bytes_stored
        yield from db.put(inp["key"], inp["value"])
        mi.stats.add_memory(db.bytes_stored - before)
        self._count_op(shard)
        yield from mi.respond(handle, {"ret": 0})

    def _h_get(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        shard = inp["shard"]
        db = self.shards.get(shard)
        if db is None:
            yield from mi.respond(handle, self._redirect(shard))
            return
        value = yield from db.get(inp["key"])
        self._count_op(shard)
        yield from mi.respond(
            handle, {"ret": 0 if value is not None else -1, "value": value}
        )

    def _h_install(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """In-migration: pull the shard content from the origin (RDMA
        bulk), install it, and start serving the shard."""
        inp = yield from mi.get_input(handle)
        shard = inp["shard"]
        bulk: BulkRef = inp["bulk"]
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        yield Compute(self.unpack_fixed + self.unpack_per_byte * bulk.nbytes)
        pairs = bulk.data
        db = self.shards.get(shard)
        if db is None:
            db = make_database(
                self.backend, self.mi.rt, db_id=shard, costs=self.costs
            )
        yield Compute(self.install_fixed + self.install_per_byte * bulk.nbytes)
        before = db.bytes_stored
        yield from db.put_many(pairs)
        installed = db.bytes_stored - before
        # Serve only after the data is fully installed.
        self.shards[shard] = db
        self.forwards.pop(shard, None)
        mi.stats.add_memory(installed)
        pvars = mi.hg.pvars
        pvars.add_at(self._pv_mig_in, 1)
        pvars.add_at(self._pv_bytes_in, installed)
        yield from mi.respond(
            handle, {"ret": 0, "n_keys": len(pairs), "nbytes": installed}
        )

    def _h_assign(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """Failover adoption: start serving an (empty) shard whose data
        died with its previous owner.  Idempotent."""
        inp = yield from mi.get_input(handle)
        shard = inp["shard"]
        if shard not in self.shards:
            db = make_database(
                self.backend, self.mi.rt, db_id=shard, costs=self.costs
            )
            yield Compute(self.install_fixed)
            self.shards[shard] = db
            self.forwards.pop(shard, None)
            pvars = mi.hg.pvars
            pvars.add_at(self._pv_mig_in, 1)
        yield from mi.respond(handle, {"ret": 0})


class ShardedKVService:
    """A sharded KV + BAKE fleet deployed on a Cluster.

    Use :meth:`deploy`; the instance exposes the authoritative SSG
    group, the per-server providers, the view propagator, and the
    :class:`~repro.shard.migration.ShardManager` driving migrations.
    """

    PID_KV = 1
    PID_BAKE = 2

    def __init__(
        self,
        cluster,
        *,
        servers: list[str],
        n_shards: int,
        providers: dict[str, ShardKvProvider],
        bake_providers: dict[str, BakeProvider],
        group: SSGGroup,
        propagator: ViewPropagator,
        membership: MembershipService,
        manager,
    ):
        self.cluster = cluster
        self.servers = servers
        self.n_shards = n_shards
        self.providers = providers
        self.bake_providers = bake_providers
        self.group = group
        self.propagator = propagator
        self.membership = membership
        self.manager = manager

    @classmethod
    def deploy(
        cls,
        cluster,
        n_servers: int,
        *,
        n_shards: Optional[int] = None,
        vnodes: int = 32,
        backend: str = "map",
        servers_per_node: int = 1,
        heartbeat: float = 100e-6,
        view_delay: float = 5e-6,
        view_stagger: float = 1e-6,
        group_name: str = "shard-kv",
        with_bake: bool = True,
        **process_kw,
    ) -> "ShardedKVService":
        """Create ``n_servers`` server processes (``servers_per_node``
        per simulated node — the topology axis), place ``n_shards``
        across them, and wire membership + migration."""
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if n_shards is None:
            n_shards = 2 * n_servers
        servers = [f"kv{i:03d}" for i in range(n_servers)]
        providers: dict[str, ShardKvProvider] = {}
        bake_providers: dict[str, BakeProvider] = {}
        for i, addr in enumerate(servers):
            node = f"snode{i // max(1, servers_per_node):03d}"
            mi = cluster.process(addr, node, **process_kw)
            providers[addr] = ShardKvProvider(
                mi, cls.PID_KV, backend=backend
            )
            if with_bake:
                bake_providers[addr] = BakeProvider(mi, cls.PID_BAKE)

        group = SSGGroup(group_name, servers)
        propagator = ViewPropagator(
            cluster.sim, base_delay=view_delay, stagger=view_stagger
        )
        for addr in servers:
            replica = SSGGroup(group_name, servers)
            replica.epoch = group.epoch
            providers[addr].replica = replica
            propagator.register(replica)
        membership = MembershipService(
            cluster.sim,
            group,
            cluster.processes,
            propagator=propagator,
            interval=heartbeat,
        )

        from .migration import ShardManager

        ring = HashRing(seed=cluster.seed, vnodes=vnodes)
        ring.replace(servers)
        shard_map = ShardMap.build(ring, n_shards, version=group.epoch)
        for shard, owner in enumerate(shard_map.owners):
            providers[owner].adopt_shard(shard)

        manager = ShardManager(
            cluster,
            providers=providers,
            group=group,
            ring=ring,
            shard_map=shard_map,
            provider_id=cls.PID_KV,
        )
        membership.on_view(manager.on_view)
        membership.start()
        cluster.add_shutdown_hook(membership.stop)

        return cls(
            cluster,
            servers=servers,
            n_shards=n_shards,
            providers=providers,
            bake_providers=bake_providers,
            group=group,
            propagator=propagator,
            membership=membership,
            manager=manager,
        )

    def make_router(self, mi: MargoInstance):
        """Client-side router bound to ``mi`` with its own view replica."""
        from .router import ShardRouter

        replica = SSGGroup(self.group.name, self.group.members)
        replica.epoch = self.group.epoch
        self.propagator.register(replica)
        return ShardRouter(
            mi,
            replica=replica,
            n_shards=self.n_shards,
            placement_seed=self.cluster.seed,
            vnodes=self.manager.ring.vnodes,
            provider_id=self.PID_KV,
            bake_provider_id=self.PID_BAKE,
        )

    # -- partition-aware deployment (repro.sim.parallel) -------------------

    @staticmethod
    def partition_servers(
        n_servers: int, n_lps: int, *, servers_per_node: int = 1
    ) -> list[list[int]]:
        """Node-aligned contiguous split of server indices across LPs.

        A simulated node must live in exactly one LP (intra-node
        traffic cannot cross an LP boundary), so the unit of
        partitioning is the node, not the server.  Deterministic and
        balanced: node ``n`` goes to LP ``n * n_lps // n_nodes``.
        """
        if n_lps < 1:
            raise ValueError("n_lps must be >= 1")
        spn = max(1, servers_per_node)
        n_nodes = (n_servers + spn - 1) // spn
        if n_lps > n_nodes:
            raise ValueError(
                f"cannot split {n_nodes} node(s) across {n_lps} LPs"
            )
        parts: list[list[int]] = [[] for _ in range(n_lps)]
        for i in range(n_servers):
            parts[(i // spn) * n_lps // n_nodes].append(i)
        return parts

    @classmethod
    def topology_groups(
        cls,
        n_servers: int,
        *,
        seed: int = 0,
        n_shards: Optional[int] = None,
        vnodes: int = 32,
        servers_per_node: int = 1,
    ) -> list:
        """Traffic-weighted node groups for automatic partitioning.

        One :class:`~repro.sim.parallel.NodeGroup` per server node,
        weighted by the number of shards the consistent-hash placement
        puts on that node at ``seed`` -- the shard map is the best
        static proxy for the traffic the node will carry, so
        :meth:`PartitionPlan.from_topology
        <repro.sim.parallel.PartitionPlan.from_topology>` balances
        LPs by expected load instead of node count.
        """
        from ..sim.parallel.topology import NodeGroup

        if n_shards is None:
            n_shards = 2 * n_servers
        spn = max(1, servers_per_node)
        servers = [f"kv{i:03d}" for i in range(n_servers)]
        ring = HashRing(seed=seed, vnodes=vnodes)
        ring.replace(servers)
        shard_map = ShardMap.build(ring, n_shards)
        shards_per_node: dict[str, int] = {
            f"snode{i // spn:03d}": 0 for i in range(n_servers)
        }
        for owner in shard_map.owners:
            shards_per_node[f"snode{int(owner[2:]) // spn:03d}"] += 1
        return [
            NodeGroup(name, weight=float(w))
            for name, w in sorted(shards_per_node.items())
        ]

    @staticmethod
    def servers_on_nodes(
        n_servers: int,
        node_names: list[str],
        *,
        servers_per_node: int = 1,
    ) -> list[int]:
        """Server indices hosted on the named ``snodeNNN`` nodes --
        the bridge from a topology builder's local group names to
        :meth:`deploy_partition`'s index slice."""
        spn = max(1, servers_per_node)
        wanted = set(node_names)
        return [
            i for i in range(n_servers) if f"snode{i // spn:03d}" in wanted
        ]

    @classmethod
    def deploy_partition(
        cls,
        ctx,
        n_servers: int,
        local_indices: list[int],
        *,
        n_shards: Optional[int] = None,
        vnodes: int = 32,
        backend: str = "map",
        servers_per_node: int = 1,
        group_name: str = "shard-kv",
        with_bake: bool = True,
        **process_kw,
    ) -> "PartitionedShardLP":
        """One LP's slice of a static sharded fleet.

        Creates only the servers in ``local_indices`` inside the LP's
        cluster (via an :class:`~repro.sim.parallel.LPContext`) and
        declares every other server as a remote peer.  Placement is
        the same consistent-hash map :meth:`deploy` computes -- the
        full ring is built locally from the shared seed, and only the
        locally owned shards are adopted.

        Static by design: no :class:`~repro.ssg.MembershipService`,
        no :class:`~repro.shard.migration.ShardManager` -- membership
        churn and shard migration across LP boundaries are explicit
        non-goals of the parallel kernel (see docs/performance.md
        section 7).  Views are frozen full-fleet replicas.
        """
        if n_shards is None:
            n_shards = 2 * n_servers
        spn = max(1, servers_per_node)
        servers = [f"kv{i:03d}" for i in range(n_servers)]
        nodes = [f"snode{i // spn:03d}" for i in range(n_servers)]
        local = sorted(set(local_indices))
        local_set = set(local)
        providers: dict[str, ShardKvProvider] = {}
        bake_providers: dict[str, BakeProvider] = {}
        group = SSGGroup(group_name, servers)
        for i in range(n_servers):
            if i in local_set:
                mi = ctx.process(servers[i], nodes[i], **process_kw)
                provider = ShardKvProvider(mi, cls.PID_KV, backend=backend)
                replica = SSGGroup(group_name, servers)
                replica.epoch = group.epoch
                provider.replica = replica
                providers[servers[i]] = provider
                if with_bake:
                    bake_providers[servers[i]] = BakeProvider(mi, cls.PID_BAKE)
            else:
                ctx.register_remote(servers[i], nodes[i])

        ring = HashRing(seed=ctx.cluster.seed, vnodes=vnodes)
        ring.replace(servers)
        shard_map = ShardMap.build(ring, n_shards, version=group.epoch)
        for shard, owner in enumerate(shard_map.owners):
            if owner in providers:
                providers[owner].adopt_shard(shard)

        return PartitionedShardLP(
            servers=servers,
            local=[servers[i] for i in local],
            providers=providers,
            bake_providers=bake_providers,
            group=group,
            shard_map=shard_map,
            n_shards=n_shards,
        )

    @classmethod
    def make_partition_router(
        cls,
        ctx,
        mi: MargoInstance,
        n_servers: int,
        *,
        n_shards: Optional[int] = None,
        vnodes: int = 32,
        servers_per_node: int = 1,
        group_name: str = "shard-kv",
        rpc_timeout: float = 2e-3,
    ):
        """Client-side router for an LP holding clients: registers
        every *non-local* server as a remote peer and builds the
        placement map from the shared seed alone -- no server object
        ever crosses the LP boundary.  Servers the LP itself deployed
        (an auto-partitioned LP may colocate clients with a server
        slice) are skipped: they are already local endpoints."""
        from .router import ShardRouter

        if n_shards is None:
            n_shards = 2 * n_servers
        spn = max(1, servers_per_node)
        local_addrs = ctx.local_addrs
        for i in range(n_servers):
            addr = f"kv{i:03d}"
            if addr in local_addrs:
                continue
            ctx.register_remote(addr, f"snode{i // spn:03d}")
        replica = SSGGroup(group_name, [f"kv{i:03d}" for i in range(n_servers)])
        return ShardRouter(
            mi,
            replica=replica,
            n_shards=n_shards,
            placement_seed=ctx.cluster.seed,
            vnodes=vnodes,
            provider_id=cls.PID_KV,
            bake_provider_id=cls.PID_BAKE,
            rpc_timeout=rpc_timeout,
        )

    # -- fleet-wide accounting (audits / reports) --------------------------

    def total_items(self) -> int:
        return sum(p.total_items for p in self.providers.values())

    def bytes_stored(self) -> int:
        return sum(p.bytes_stored for p in self.providers.values())

    def shard_owner(self, shard: int) -> Optional[str]:
        for addr in self.servers:
            if self.providers[addr].mi.crashed:
                continue
            if shard in self.providers[addr].shards:
                return addr
        return None


@dataclass
class PartitionedShardLP:
    """One LP's view of a statically partitioned sharded fleet:
    the full server roster plus the locally hosted slice."""

    servers: list[str]
    local: list[str]
    providers: dict[str, ShardKvProvider]
    bake_providers: dict[str, BakeProvider]
    group: SSGGroup
    shard_map: ShardMap
    n_shards: int

    def total_items(self) -> int:
        return sum(p.total_items for p in self.providers.values())

    def bytes_stored(self) -> int:
        return sum(p.bytes_stored for p in self.providers.values())

    def owned_shards(self) -> list[int]:
        return sorted(
            shard
            for p in self.providers.values()
            for shard in p.owned_shards
        )
