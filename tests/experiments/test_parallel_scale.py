"""The parallel-kernel scale experiment and its integrations.

Covers the deterministic CLI surface (double-run and cross-worker
byte-identity of the report), store recording through
``record_parallel_run`` plus the ``kernel`` analysis op over it, and
the ``--jobs`` x ``--workers`` composition: experiment-cell fan-out
workers are non-daemonic, so a cell may itself fork LP processes.
"""

import os
import tempfile

from repro.experiments.parallel_scale import (
    ParallelScaleCell,
    run_parallel_scale,
    smoke_parallel_cell,
)
from repro.experiments.runner import map_cells

CELL = ParallelScaleCell(
    n_servers=8, server_lps=2, n_clients=2, keys_per_client=4
)


def test_double_run_is_byte_identical():
    a = run_parallel_scale(CELL, workers=1)
    b = run_parallel_scale(CELL, workers=1)
    a.check_invariants()
    assert a.report() == b.report()


def test_report_is_identical_across_workers():
    serial = run_parallel_scale(CELL, workers=1)
    parallel = run_parallel_scale(CELL, workers=2, verify=True)
    assert serial.report() == parallel.report()
    assert parallel.result.verified_against is not None


def test_smoke_cell_shape():
    cell = smoke_parallel_cell()
    assert cell.n_servers == 32
    assert cell.server_lps == 4
    assert "par-" in cell.name


def test_store_recording_and_kernel_query():
    from repro.analysis.queries import run_query
    from repro.store import PerfStore

    path = os.path.join(tempfile.mkdtemp(), "parallel.db")
    scale = run_parallel_scale(CELL, workers=1, store=path)
    store = PerfStore(path)
    try:
        (run,) = store.runs(kind="parallel")
        assert run["config"]["n_lps"] == CELL.server_lps + 1
        reply = run_query(store, "kernel", {"run": run["run_id"]})
        assert reply["windows"] == scale.result.windows_executed
        assert (
            reply["boundary_events"]["total"]
            == scale.result.boundary_events
        )
        assert len(reply["lps"]) == CELL.server_lps + 1
        assert reply["workers_used"] == 1
        # Byte-determinism of the reply itself.
        assert reply == run_query(store, "kernel", {"run": run["run_id"]})
    finally:
        store.close()


def test_kernel_query_rejects_other_kinds():
    import pytest

    from repro.analysis.queries import run_query
    from repro.store import PerfStore, StoreWriter

    path = os.path.join(tempfile.mkdtemp(), "other.db")
    writer = StoreWriter(PerfStore(path))
    run_id = writer.begin_run("not-parallel", kind="cluster", seed=0)
    writer.flush()
    try:
        with pytest.raises(ValueError, match="kind"):
            run_query(writer.store, "kernel", {"run": run_id})
    finally:
        writer.store.close()


def _parallel_cell_worker(cell: dict) -> str:
    """Module-level (picklable) cell: one parallel run inside a pool
    worker -- exercises nested fork under ``map_cells``."""
    result = run_parallel_scale(
        ParallelScaleCell(**cell["cell"]),
        workers=cell["workers"],
        collect=False,
    )
    result.check_invariants()
    return result.report()


def test_jobs_compose_with_workers():
    cell = {
        "cell": {
            "n_servers": 8,
            "server_lps": 2,
            "n_clients": 2,
            "keys_per_client": 4,
        },
        "workers": 2,
    }
    inline = map_cells(_parallel_cell_worker, [cell, cell], jobs=1)
    pooled = map_cells(_parallel_cell_worker, [cell, cell], jobs=2)
    assert inline == pooled
    assert inline[0] == inline[1]
