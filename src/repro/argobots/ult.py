"""User-level threads (ULTs) and the effects they yield.

A ULT body is a Python generator.  It communicates with the execution
stream interpreting it by yielding *ABT effects*:

* :class:`Compute` -- occupy the execution stream's CPU for a duration of
  simulated time.
* :class:`WaitEventual` -- block until an :class:`~repro.argobots.sync.Eventual`
  is signaled; the signal value becomes the result of the ``yield``.
  An optional timeout turns the result into ``(ok, value)``.
* :class:`YieldNow` -- cooperative yield: requeue at the tail of the home
  pool so other ready ULTs can run.

Blocking a ULT frees its execution stream; that distinction (versus
blocking the whole kernel task) is what makes handler-pool queueing and
progress-loop starvation emerge naturally in the simulation.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Generator, Optional

__all__ = ["ULT", "UltState", "Compute", "WaitEventual", "YieldNow", "AbtEffect"]

_ult_ids = itertools.count(1)


class UltState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class AbtEffect:
    """Marker base class for effects a ULT may yield."""

    __slots__ = ()


class Compute(AbtEffect):
    """Consume ``duration`` seconds of CPU on the current execution stream."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration!r}")
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute({self.duration!r})"


class WaitEventual(AbtEffect):
    """Block the ULT until the eventual is signaled.

    Without a timeout, the ``yield`` evaluates to the signal value.  With a
    timeout, it evaluates to ``(ok, value)`` where ``ok`` is False if the
    timeout elapsed first.
    """

    __slots__ = ("eventual", "timeout")

    def __init__(self, eventual: Any, timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout: {timeout!r}")
        self.eventual = eventual
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitEventual({self.eventual!r}, timeout={self.timeout!r})"


class YieldNow(AbtEffect):
    """Cooperatively yield the execution stream."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "YieldNow()"


class ULT:
    """A user-level thread: a generator plus scheduling state.

    ``local`` is the ULT-local key/value storage the paper's "ULT-local
    key" instrumentation strategy (Table III) writes through.
    """

    __slots__ = (
        "id",
        "gen",
        "name",
        "pool",
        "state",
        "local",
        "created_at",
        "started_at",
        "finished_at",
        "result",
        "error",
        "_send_value",
        "_throw_exc",
        "_wait_wrap",
        "join_waiters",
    )

    def __init__(self, gen: Generator, pool: Any, name: str = "", created_at: float = 0.0):
        self.id = next(_ult_ids)
        self.gen = gen
        self.name = name or f"ult{self.id}"
        self.pool = pool
        self.state = UltState.READY
        self.local: dict[Any, Any] = {}
        self.created_at = created_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._send_value: Any = None
        self._throw_exc: Optional[BaseException] = None
        self._wait_wrap = False
        #: Eventuals signaled with the ULT's result when it terminates.
        self.join_waiters: list[Any] = []

    @property
    def terminated(self) -> bool:
        return self.state is UltState.TERMINATED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ULT({self.name!r}, {self.state.value})"
