"""Distributed callpath ancestry encoding (paper §IV-A-1).

Each RPC name is hashed to a 16-bit component.  A callpath is a 64-bit
value built by shifting the current ancestry left 16 bits and OR-ing in
the new component::

    code' = ((code << 16) | hash16(name)) mod 2**64

which bounds the representable chain length at **four** -- exactly the
paper's limitation ("Currently, Margo can store RPC callpath lengths of
up to four in the 64-bit hash value").  Deeper chains silently drop the
oldest ancestor; :func:`components` and the registry make that behaviour
observable and tested rather than implicit.

The component hash is mapped into ``1..65535`` so that a zero 16-bit
chunk always means "empty slot", keeping decoding unambiguous.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "MAX_DEPTH",
    "hash16",
    "push",
    "components",
    "depth",
    "CallpathRegistry",
]

MAX_DEPTH = 4
_MASK64 = (1 << 64) - 1
_MASK16 = (1 << 16) - 1


def hash16(rpc_name: str) -> int:
    """Stable 16-bit hash of an RPC name, in ``1..65535``."""
    digest = hashlib.sha256(rpc_name.encode("utf-8")).digest()
    h = int.from_bytes(digest[:2], "little")
    return (h % _MASK16) + 1  # never 0


def push(code: int, rpc_name: str) -> int:
    """Extend ancestry ``code`` with a downstream RPC call."""
    if not 0 <= code <= _MASK64:
        raise ValueError(f"callpath code out of range: {code:#x}")
    return ((code << 16) | hash16(rpc_name)) & _MASK64


def components(code: int) -> list[int]:
    """The 16-bit components of ``code``, oldest ancestor first.

    Leading zero chunks (unused slots) are skipped; interior zero chunks
    cannot occur because :func:`hash16` never returns 0.
    """
    if not 0 <= code <= _MASK64:
        raise ValueError(f"callpath code out of range: {code:#x}")
    chunks = [(code >> shift) & _MASK16 for shift in (48, 32, 16, 0)]
    while chunks and chunks[0] == 0:
        chunks.pop(0)
    return chunks


def depth(code: int) -> int:
    """Number of RPC components encoded in ``code`` (0..4)."""
    return len(components(code))


class CallpathRegistry:
    """Maps 16-bit components back to RPC names for decoding profiles.

    Populated as instrumentation observes RPC registrations/invocations.
    Hash collisions (two names, one component) are recorded so analysis
    output can flag ambiguous decodes instead of guessing silently.
    """

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self.collisions: dict[int, set[str]] = {}

    def register(self, rpc_name: str) -> int:
        h = hash16(rpc_name)
        existing = self._names.get(h)
        if existing is None:
            self._names[h] = rpc_name
        elif existing != rpc_name:
            self.collisions.setdefault(h, {existing}).add(rpc_name)
        return h

    def name_of(self, component: int) -> str:
        if component in self.collisions:
            options = "|".join(sorted(self.collisions[component]))
            return f"<ambiguous:{options}>"
        return self._names.get(component, f"<unknown:{component:#06x}>")

    def decode(self, code: int) -> str:
        """Human-readable callpath, e.g.
        ``mobject_write_op -> sdskv_put_rpc``."""
        parts = components(code)
        if not parts:
            return "<root>"
        return " -> ".join(self.name_of(c) for c in parts)

    def known_names(self) -> list[str]:
        return sorted(set(self._names.values()))
