#!/usr/bin/env python3
"""Sonata: storing JSON documents and querying them in place.

Demonstrates the Sonata microservice API end to end -- create a
collection, store a record array in batches, run Jx9-style filters
remotely -- and then uses SYMBIOSYS to break the target execution time
into its steps (the Figure 7 analysis).

Run:  python examples/sonata_analysis.py
"""

from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.sonata import SonataClient, SonataProvider
from repro.sim import Simulator
from repro.symbiosys import Stage, SymbiosysCollector
from repro.experiments import ascii_table, format_seconds, run_sonata_experiment
from repro.workloads import generate_json_records


def interactive_demo() -> None:
    """Use the Sonata API directly (no experiment harness)."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(Stage.FULL)
    server = MargoInstance(
        sim, fabric, "db-server", "nodeA",
        config=MargoConfig(n_handler_es=2),
        instrumentation=collector.create_instrumentation(),
    )
    SonataProvider(server, provider_id=1)
    client_mi = MargoInstance(
        sim, fabric, "analyst", "nodeB",
        instrumentation=collector.create_instrumentation(),
    )
    sonata = SonataClient(client_mi)
    records = generate_json_records(2000)
    out = {}

    def body():
        yield from sonata.create_database("db-server", 1, "telemetry")
        yield from sonata.store_multi(
            "db-server", 1, "telemetry", records, batch_size=500
        )
        out["alphas"] = yield from sonata.filter(
            "db-server", 1, "telemetry",
            {"and": [
                {"field": "tag", "op": "==", "value": "alpha"},
                {"field": "score", "op": ">", "value": 0.5},
            ]},
        )
        out["size"] = yield from sonata.size("db-server", 1, "telemetry")

    client_mi.client_ult(body())
    assert sim.run_until(lambda: "size" in out, limit=10.0)
    expected = [r for r in records if r["tag"] == "alpha" and r["score"] > 0.5]
    assert out["alphas"] == expected
    print(f"stored {out['size']} documents; remote Jx9 filter matched "
          f"{len(out['alphas'])} (verified against local evaluation)")


def figure7_breakdown() -> None:
    """The Figure 7 experiment at paper scale ratios."""
    result = run_sonata_experiment(n_records=10_000, batch_size=1_000)
    breakdown = result.target_execution_breakdown()
    total = (breakdown["target_execution_time"]
             + breakdown["internal_rdma_transfer_time"])
    rows = [
        {"step": k, "time": format_seconds(v), "share": f"{100 * v / total:.1f}%"}
        for k, v in breakdown.items() if k != "target_execution_time"
    ]
    print("\n=== Figure 7: mapping execution time to individual steps ===")
    print(ascii_table(rows))
    print(f"input deserialization is "
          f"{100 * result.deserialization_fraction:.1f}% of target execution "
          f"(paper: ~27%) -- the JSON array travels as RPC metadata")


if __name__ == "__main__":
    interactive_demo()
    figure7_breakdown()
