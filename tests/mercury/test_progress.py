"""Focused tests for the Mercury progress/trigger engine."""

import pytest

from repro.argobots import AbtRuntime
from repro.mercury import HGConfig, HGCore
from repro.net import CQEntry, CQKind, Fabric, FabricConfig
from repro.sim import Simulator


def make_hg(**cfg):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    rt.create_xstream(pool)
    hg = HGCore(
        sim, fabric, fabric.create_endpoint("p"), rt,
        config=HGConfig(**cfg), pvars_enabled=True,
    )
    return sim, rt, pool, hg


def push_callback_entries(hg, n):
    for i in range(n):
        hg.endpoint.push(
            CQEntry(kind=CQKind.SEND_COMPLETE, payload=lambda: None,
                    enqueued_at=0.0)
        )


def test_progress_nonblocking_on_empty_queue():
    sim, rt, pool, hg = make_hg()
    out = {}

    def body():
        out["n"] = yield from hg.progress(timeout=0.0)
        out["t"] = sim.now

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["n"] == 0
    assert out["t"] == 0.0


def test_progress_blocking_timeout_elapses():
    sim, rt, pool, hg = make_hg()
    out = {}

    def body():
        out["n"] = yield from hg.progress(timeout=5e-3)
        out["t"] = sim.now

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["n"] == 0
    assert out["t"] == pytest.approx(5e-3)


def test_progress_wakes_early_on_arrival():
    sim, rt, pool, hg = make_hg()
    out = {}

    def body():
        out["n"] = yield from hg.progress(timeout=1.0)
        out["t"] = sim.now

    rt.spawn(body(), pool)
    sim.call_at(1e-3, push_callback_entries, hg, 3)
    sim.run(until=2.0)
    assert out["n"] == 3
    assert out["t"] == pytest.approx(1e-3)


def test_progress_caps_reads_at_live_ofi_max_events():
    sim, rt, pool, hg = make_hg(ofi_max_events=4)
    push_callback_entries(hg, 10)
    out = {}

    def body():
        out["first"] = yield from hg.progress(timeout=0.0)
        hg.set_ofi_max_events(8)
        out["second"] = yield from hg.progress(timeout=0.0)

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["first"] == 4
    assert out["second"] == 6  # remaining, within the raised cap


def test_set_ofi_max_events_validation():
    sim, rt, pool, hg = make_hg()
    with pytest.raises(ValueError):
        hg.set_ofi_max_events(0)


def test_trigger_respects_max_count():
    sim, rt, pool, hg = make_hg()
    fired = []
    for i in range(6):
        hg._completion_queue.append(lambda i=i: fired.append(i))
    out = {}

    def body():
        out["a"] = yield from hg.trigger(max_count=2)
        out["b"] = yield from hg.trigger()

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["a"] == 2
    assert out["b"] == 4
    assert fired == list(range(6))


def test_trigger_charges_callback_cost():
    sim, rt, pool, hg = make_hg(callback_cost=1e-3)
    for _ in range(4):
        hg._completion_queue.append(lambda: None)
    out = {}

    def body():
        yield from hg.trigger()
        out["t"] = sim.now

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["t"] == pytest.approx(4e-3)


def test_completion_queue_size_pvar_tracks_backlog():
    sim, rt, pool, hg = make_hg()
    sess = hg.pvar_session_init()
    assert sess.read_by_name("completion_queue_size") == 0
    push_callback_entries(hg, 5)
    out = {}

    def body():
        yield from hg.progress(timeout=0.0)
        out["queued"] = sess.read_by_name("completion_queue_size")
        yield from hg.trigger()
        out["drained"] = sess.read_by_name("completion_queue_size")

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["queued"] == 5
    assert out["drained"] == 0


def test_cancel_unknown_handle_is_false():
    sim, rt, pool, hg = make_hg()
    hg.register("x")
    handle = hg.create("p", "x")
    assert hg.cancel(handle) is False
