"""Command-line store maintenance: ``python -m repro.store <command>``.

Commands
--------

``import-bench``
    Import one or more BENCH JSON files (single-suite or bundle format)
    into a store as bench runs + idempotent history entries.  CI uses
    this to turn the committed baselines into the store the bench
    ``--check`` gate reads.

``info``
    Print a deterministic summary of a store: schema version, runs,
    series/event/finding counts, bench suites.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import PerfStore, record_bench_suite


def _cmd_import_bench(args: argparse.Namespace) -> int:
    with PerfStore(args.store) as store:
        for path in args.files:
            with open(path) as f:
                doc = json.load(f)
            # A file is either one suite dict or a bundle keyed by suite.
            suites = (
                [doc]
                if "suite" in doc
                else [v for v in doc.values() if isinstance(v, dict)]
            )
            imported = 0
            for payload in suites:
                if "results" not in payload:
                    continue
                run_id = record_bench_suite(
                    store, payload, date=args.date or ""
                )
                imported += 1
                print(
                    f"imported {payload.get('suite', '?')} from {path} "
                    f"as run {run_id}"
                )
            if not imported:
                print(f"{path}: no bench suites found", file=sys.stderr)
                return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with PerfStore(args.store) as store:
        from .schema import schema_version

        conn = store.conn
        counts = {
            table: conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in (
                "runs", "metrics", "samples", "trace_events",
                "sched_slices", "findings", "profiles", "bench_results",
                "bench_history",
            )
        }
        print(f"store {args.store}")
        print(f"  schema version: {schema_version(conn)}")
        for table, n in counts.items():
            print(f"  {table:<14} {n}")
        for run in store.runs():
            print(
                f"  run {run['run_id']:>3}  {run['kind']:<9} "
                f"{run['name']}  seed={run['seed']}"
            )
        suites = store.bench_suites()
        if suites:
            print(f"  bench suites: {', '.join(suites)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Maintain a persistent performance store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_imp = sub.add_parser(
        "import-bench", help="import BENCH JSON files into a store"
    )
    p_imp.add_argument("files", nargs="+", help="BENCH_*.json files")
    p_imp.add_argument("--store", required=True, help="store .db path")
    p_imp.add_argument("--date", default=None,
                       help="history date stamp (default: empty)")
    p_imp.set_defaults(fn=_cmd_import_bench)

    p_info = sub.add_parser("info", help="summarize a store")
    p_info.add_argument("--store", required=True, help="store .db path")
    p_info.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
