"""Ablation benchmarks: probing the design choices behind the figures.

These extend the paper's evaluation along the axes DESIGN.md §5 calls
out: the OFI_max_events knob as a sweep rather than two points, the
progress-thread x batch-size interaction, the backend choice behind the
Figure 10 serialization, the callpath-depth limitation, instrumentation
stage costs on a hot path, and -- the paper's future work -- whether an
in-situ policy engine can find the C7 configuration automatically.
"""

import time

import numpy as np
import pytest

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)
from repro.symbiosys import (
    DedicateProgressES,
    PolicyEngine,
    RaiseOfiMaxEvents,
    Stage,
)
from .conftest import run_once

EVENTS = 2048


# --------------------------------------------------------- OFI_max_events sweep


def test_ablation_ofi_max_events(benchmark, report):
    """Sweep the Figure 12 knob: cumulative RPC time falls until the cap
    clears the steady backlog, then flattens."""

    def _sweep():
        out = {}
        for cap in (8, 16, 32, 64, 128):
            cfg = TABLE_IV["C5"].scaled(name=f"C5/cap{cap}", ofi_max_events=cap)
            out[cap] = run_hepnos_experiment(
                cfg, events_per_client=EVENTS, pipeline_width=64
            )
        return out

    results = run_once(benchmark, _sweep)
    rows = [
        {
            "OFI_max_events": cap,
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "unaccounted share": f"{100 * r.unaccounted_fraction:.1f}%",
            "mean ofi reads": float(np.mean([v for _, v in r.ofi_series()])),
        }
        for cap, r in results.items()
    ]
    report.append("Ablation: OFI_max_events sweep at batch size 1 (C5 base)")
    report.append(ascii_table(rows))

    t = {cap: r.cumulative_origin_time for cap, r in results.items()}
    # Monotone improvement on the steep part of the curve...
    assert t[8] > t[16] > t[32] > t[64]
    # ...then diminishing returns once the cap exceeds the backlog.
    gain_16_64 = 1 - t[64] / t[16]
    gain_64_128 = 1 - t[128] / t[64]
    assert gain_16_64 > 0.3
    assert gain_64_128 < gain_16_64 / 2
    benchmark.extra_info["sweep"] = {str(k): round(v, 6) for k, v in t.items()}


# --------------------------------------------------------- progress thread grid


def test_ablation_progress_thread(benchmark, report):
    """Progress-thread placement x batch size: the dedicated ES only
    matters when the RPC rate is high (small batches)."""

    def _grid():
        out = {}
        for batch in (1, 1024):
            for pt in (False, True):
                cfg = TABLE_IV["C4"].scaled(
                    name=f"b{batch}/pt{int(pt)}",
                    batch_size=batch,
                    client_progress_thread=pt,
                    ofi_max_events=16,
                )
                out[(batch, pt)] = run_hepnos_experiment(
                    cfg, events_per_client=EVENTS,
                    pipeline_width=64 if batch == 1 else 32,
                )
        return out

    results = run_once(benchmark, _grid)
    rows = [
        {
            "batch": batch,
            "progress thread": "yes" if pt else "no",
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "makespan": format_seconds(r.makespan),
        }
        for (batch, pt), r in sorted(results.items())
    ]
    report.append("Ablation: progress-thread placement x batch size")
    report.append(ascii_table(rows))

    small_gain = 1 - (
        results[(1, True)].cumulative_origin_time
        / results[(1, False)].cumulative_origin_time
    )
    big_gain = 1 - (
        results[(1024, True)].cumulative_origin_time
        / results[(1024, False)].cumulative_origin_time
    )
    report.append(
        f"dedicated-ES gain: batch 1 -> {100 * small_gain:.1f}%, "
        f"batch 1024 -> {100 * big_gain:.1f}%"
    )
    assert small_gain > 0.5  # decisive at batch 1
    assert abs(big_gain) < 0.3  # marginal at batch 1024
    benchmark.extra_info["small_batch_gain"] = round(small_gain, 4)
    benchmark.extra_info["large_batch_gain"] = round(big_gain, 4)


# --------------------------------------------------------- backend choice


def test_ablation_backend(benchmark, report):
    """Figure 10's mechanism isolated: swapping the map backend for the
    LSM-style (concurrent-insert) backend removes the blocked-ULT
    serialization spikes even under the C2 flood."""
    from repro.experiments.hepnos import run_hepnos_experiment as run
    from repro.experiments.presets import THETA_KNL
    from repro.margo import MargoConfig, MargoInstance
    from repro.net import Fabric
    from repro.services.hepnos import DataLoader, DataLoaderConfig, HEPnOSService
    from repro.sim import Simulator
    from repro.symbiosys import SymbiosysCollector
    from repro.workloads import flatten_to_pairs, generate_event_files

    def _run_backend(backend):
        cfg = TABLE_IV["C2"]
        sim = Simulator()
        fabric = Fabric(sim, THETA_KNL.fabric)
        collector = SymbiosysCollector(Stage.FULL)
        service = HEPnOSService.deploy(
            sim, fabric,
            n_servers=cfg.total_servers,
            servers_per_node=cfg.servers_per_node,
            n_handler_es=cfg.threads,
            n_databases=cfg.databases_per_server,
            backend=backend,
            sdskv_costs=THETA_KNL.map_costs if backend == "map" else None,
            hg_config=THETA_KNL.hg_config(cfg.ofi_max_events),
            serialization=THETA_KNL.serialization,
            ctx_switch_cost=THETA_KNL.ctx_switch_cost,
            instrumentation_factory=collector.create_instrumentation,
        )
        loaders = []
        for i in range(cfg.total_clients):
            mi = MargoInstance(
                sim, fabric, f"cli{i}", f"cnode{i // cfg.clients_per_node}",
                config=MargoConfig(),
                hg_config=THETA_KNL.hg_config(cfg.ofi_max_events),
                serialization=THETA_KNL.serialization,
                ctx_switch_cost=THETA_KNL.ctx_switch_cost,
                instrumentation=collector.create_instrumentation(),
            )
            loader = DataLoader(
                mi, service, DataLoaderConfig(batch_size=cfg.batch_size,
                                              pipeline_width=2)
            )
            files = generate_event_files(
                n_files=1, events_per_file=EVENTS, seed=7 + i
            )
            loader.load(flatten_to_pairs(files))
            loaders.append(loader)
        assert sim.run_until(lambda: all(l.done for l in loaders), limit=300.0)
        from repro.symbiosys.analysis import blocked_ult_samples

        blocked = np.array(
            [b for _, b, _ in blocked_ult_samples(collector.all_events())]
        )
        contention = max(
            db.insert_mutex_waiters_high_watermark
            for p in service.sdskv_providers
            for db in p.databases
        )
        return blocked, contention, max(l.finished_at for l in loaders)

    def _run_pair():
        return {b: _run_backend(b) for b in ("map", "leveldb")}

    results = run_once(benchmark, _run_pair)
    rows = [
        {
            "backend": b,
            "blocked max": int(blocked.max()),
            "insert mutex contention (max waiters)": contention,
            "makespan": format_seconds(makespan),
        }
        for b, (blocked, contention, makespan) in results.items()
    ]
    report.append("Ablation: SDSKV backend under the C2 burst")
    report.append(ascii_table(rows))

    map_blocked, map_contention, _ = results["map"]
    ldb_blocked, ldb_contention, _ = results["leveldb"]
    # The *insert serialization* is a map-backend phenomenon: leveldb has
    # no insert mutex at all.  (Blocked-ULT counts include bulk-transfer
    # waits, so they drop but do not vanish.)
    assert map_contention > 10
    assert ldb_contention == 0
    assert map_blocked.max() > 1.3 * ldb_blocked.max()
    benchmark.extra_info["map_blocked_max"] = int(map_blocked.max())
    benchmark.extra_info["leveldb_blocked_max"] = int(ldb_blocked.max())
    benchmark.extra_info["map_mutex_contention"] = int(map_contention)


# --------------------------------------------------------- callpath depth


def test_ablation_callpath_depth(benchmark, report):
    """Chains deeper than 4 lose their oldest ancestor -- the 64-bit
    encoding limitation, demonstrated on a live 5-deep service chain."""
    import repro.argobots as abt
    from repro.margo import MargoConfig, MargoInstance
    from repro.net import Fabric, FabricConfig
    from repro.sim import Simulator
    from repro.symbiosys import SymbiosysCollector, push

    def _run_chain():
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig())
        collector = SymbiosysCollector(Stage.FULL)
        n_ops = 5  # op1 .. op5: one more link than the encoding can hold
        tiers = {}
        for level in range(1, n_ops + 1):
            tiers[level] = MargoInstance(
                sim, fabric, f"tier{level}", f"n{level}",
                config=MargoConfig(n_handler_es=1),
                instrumentation=collector.create_instrumentation(),
            )

        def make_handler(level):
            def handler(mi, handle):
                yield from mi.get_input(handle)
                if level < n_ops:
                    yield from mi.forward(f"tier{level + 1}", f"op{level + 1}", {})
                yield abt.Compute(1e-6)
                yield from mi.respond(handle, level)
            return handler

        for level in range(1, n_ops + 1):
            tiers[level].register(f"op{level}", make_handler(level))
            if level < n_ops:
                tiers[level].register(f"op{level + 1}")  # client-side stub

        client = MargoInstance(
            sim, fabric, "cli", "nc",
            instrumentation=collector.create_instrumentation(),
        )
        client.register("op1")
        done = []

        def body():
            yield from client.forward("tier1", "op1", {})
            done.append(True)

        client.client_ult(body())
        assert sim.run_until(lambda: done, limit=1.0)
        return collector

    collector = run_once(benchmark, _run_chain)
    from repro.symbiosys import components, hash16

    target = collector.merged_target_profile()
    codes = {key.callpath for key in target.keys()}
    # op5's ancestry is 5 links long but the encoding holds 4: the code
    # recorded for op5 keeps only op2..op5 -- op1 was shifted out.
    (op5_code,) = [c for c in codes if components(c)[-1] == hash16("op5")]
    assert components(op5_code) == [hash16(f"op{i}") for i in range(2, 6)]
    # The depth-4 chain (op1..op4) is intact alongside it.
    (op4_code,) = [c for c in codes if components(c)[-1] == hash16("op4")]
    assert components(op4_code) == [hash16(f"op{i}") for i in range(1, 5)]
    deepest = op5_code
    decoded = collector.registry.decode(deepest)
    report.append("Ablation: callpath depth overflow (5-deep chain)")
    report.append(f"  deepest recorded ancestry: {decoded}")
    report.append("  (op1, the true root, was shifted out -- the paper's "
                  "depth-4 limit)")
    assert "op1" not in decoded
    assert "op5" in decoded


# --------------------------------------------------------- stage cost ladder


def test_ablation_stages(benchmark, report):
    """Wall-clock cost of each instrumentation stage on a hot RPC path
    (complements Figure 13 with a per-RPC microview)."""

    def _ladder():
        out = {}
        for stage in (Stage.OFF, Stage.STAGE1, Stage.STAGE2, Stage.FULL):
            t0 = time.perf_counter()
            r = run_hepnos_experiment(
                TABLE_IV["C4"], events_per_client=EVENTS, stage=stage
            )
            out[stage] = (time.perf_counter() - t0, r.makespan)
        return out

    results = run_once(benchmark, _ladder)
    rows = [
        {
            "stage": stage.name,
            "wall": format_seconds(wall),
            "sim makespan": format_seconds(makespan),
        }
        for stage, (wall, makespan) in results.items()
    ]
    report.append("Ablation: instrumentation stage cost ladder (C4 workload)")
    report.append(ascii_table(rows))
    makespans = {round(m, 12) for _, m in results.values()}
    assert len(makespans) == 1, "stages must not perturb simulated time"
    # Full support should stay within 2x of baseline wall-clock.
    assert results[Stage.FULL][0] < 2.0 * max(results[Stage.OFF][0], 0.05)


# --------------------------------------------------------- autotuner


def test_ablation_autotuner(benchmark, report):
    """The future-work extension: starting from the pathological C5, the
    in-situ policy engine raises OFI_max_events and dedicates a progress
    ES online, recovering most of the hand-tuned C7 improvement."""

    def _make_engine(mi):
        # Staggered escalation matching the paper's C5 -> C6 -> C7 story:
        # raise the read cap first; dedicate a progress ES only if the
        # queue stays deep afterwards.
        return PolicyEngine(
            mi,
            [
                RaiseOfiMaxEvents(window=4, cooldown=0.5e-3, max_cap=64),
                DedicateProgressES(window=16, depth_threshold=8,
                                   cooldown=2e-3),
            ],
            period=0.1e-3,
        )

    def _run_all():
        plain = run_hepnos_experiment(
            TABLE_IV["C5"], events_per_client=EVENTS, pipeline_width=64
        )
        tuned = run_hepnos_experiment(
            TABLE_IV["C5"],
            events_per_client=EVENTS,
            pipeline_width=64,
            client_policy_factory=_make_engine,
        )
        hand = run_hepnos_experiment(
            TABLE_IV["C7"], events_per_client=EVENTS, pipeline_width=64
        )
        return plain, tuned, hand

    plain, tuned, hand = run_once(benchmark, _run_all)
    rows = [
        {
            "setup": name,
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "unaccounted share": f"{100 * r.unaccounted_fraction:.1f}%",
        }
        for name, r in (
            ("C5 (static)", plain),
            ("C5 + policy engine", tuned),
            ("C7 (hand-tuned)", hand),
        )
    ]
    report.append("Ablation: in-situ autotuning from C5")
    report.append(ascii_table(rows))
    actions = [a for e in tuned.policy_engines for a in e.actions]
    for a in actions[:8]:
        report.append(f"  t={a.time * 1e3:.2f}ms {a.policy}: {a.description}")

    # The engine actually reconfigured something on every client.
    assert len(tuned.policy_engines) == 2
    assert all(e.actions for e in tuned.policy_engines)
    fired = {a.policy for a in actions}
    assert "RaiseOfiMaxEvents" in fired
    # Autotuned C5 closes most of the gap to hand-tuned C7.
    gap_static = plain.cumulative_origin_time - hand.cumulative_origin_time
    gap_tuned = tuned.cumulative_origin_time - hand.cumulative_origin_time
    closed = 1 - gap_tuned / gap_static
    report.append(f"gap to hand-tuned C7 closed: {100 * closed:.1f}%")
    assert closed > 0.5
    benchmark.extra_info["gap_closed"] = round(closed, 4)
    benchmark.extra_info["actions"] = [a.description for a in actions]
