"""Monitor-triggered hot-spot rebalancing."""

from repro.cluster import Cluster
from repro.shard import ShardedKVService, make_hotspot_detector_factory
from repro.symbiosys import Stage
from repro.symbiosys.monitor import MonitorConfig


def test_hot_shard_is_detected_and_rebalanced():
    with Cluster(
        seed=9,
        stage=Stage.FULL,
        monitoring=MonitorConfig(interval=50e-6),
    ) as cluster:
        service = ShardedKVService.deploy(cluster, 8)
        detector = make_hotspot_detector_factory(
            service.manager,
            service.providers,
            min_window_ops=4,
            hot_fraction=0.5,
            cooldown=10.0,
        )(cluster.monitor.config)
        cluster.monitor.detectors.append(detector)

        manager = service.manager
        hot_key = next(
            k
            for k in (f"hot{i}" for i in range(1000))
            if len(
                service.providers[manager.map.owner_of_key(k)].shards
            ) >= 2
        )
        hot_shard = manager.map.shard_of(hot_key)
        hot_owner = manager.map.owner_of_shard(hot_shard)

        pending = {"n": 4}
        for c in range(4):
            mi = cluster.process(f"cli{c}", f"nodeC{c}")
            router = service.make_router(mi)

            def body(router=router):
                yield from router.put(hot_key, "v")
                for _ in range(60):
                    value = yield from router.get(hot_key)
                    assert value == "v"
                pending["n"] -= 1

            mi.client_ult(body(), name=f"hammer{c}")
        assert cluster.run_until(lambda: pending["n"] == 0, limit=1.0)
        cluster.run(until=cluster.sim.now + 2e-3)

        # The detector saw the hot shard and requested a rebalance...
        assert detector.rebalances
        t, shard, src, dst = detector.rebalances[0]
        assert (shard, src) == (hot_shard, hot_owner)
        # ...the migration completed and ownership moved...
        completed = manager.completed("rebalance")
        assert completed and completed[0].shard == hot_shard
        assert manager.current_owner(hot_shard) == dst != hot_owner
        # ...with an edge-triggered finding and per-shard telemetry.
        hot_findings = [
            f for f in cluster.monitor.findings if f.detector == "shard_hotspot"
        ]
        assert hot_findings and f"shard {hot_shard}" in hot_findings[0].message
        series = cluster.monitor.store.series(
            "shard_ops", {"process": hot_owner, "shard": f"{hot_shard:04d}"}
        )
        assert series.samples()  # recorded during the run
