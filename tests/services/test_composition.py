"""Composition tests: many providers on one process, cross-service flows."""

import pytest

from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.bake import BakeClient, BakeProvider
from repro.services.sdskv import SdskvClient, SdskvProvider
from repro.services.sonata import SonataClient, SonataProvider
from repro.sim import Simulator
from repro.symbiosys import Stage, SymbiosysCollector


def make_composed_world(stage=None):
    """One server process hosting BAKE + SDSKV + Sonata providers."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(stage) if stage is not None else None
    server = MargoInstance(
        sim, fabric, "svr", "n0",
        config=MargoConfig(n_handler_es=4),
        instrumentation=collector.create_instrumentation() if collector else None,
    )
    BakeProvider(server, provider_id=1)
    SdskvProvider(server, provider_id=2, n_databases=2)
    SonataProvider(server, provider_id=3)
    client_mi = MargoInstance(
        sim, fabric, "cli", "n1",
        instrumentation=collector.create_instrumentation() if collector else None,
    )
    return sim, server, client_mi, collector


def run_gen(sim, mi, gen, limit=5.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def test_three_services_one_process():
    sim, server, client_mi, _ = make_composed_world()
    bake = BakeClient(client_mi)
    skv = SdskvClient(client_mi)
    sonata = SonataClient(client_mi)

    def flow():
        rid = yield from bake.create_write_persist("svr", 1, b"blob" * 100)
        yield from skv.put("svr", 2, 0, "region", rid)
        yield from sonata.create_database("svr", 3, "meta")
        yield from sonata.store_multi(
            "svr", 3, "meta", [{"rid": rid, "kind": "blob"}]
        )
        # Cross-service read path: sonata -> sdskv -> bake.
        docs = yield from sonata.filter(
            "svr", 3, "meta", {"field": "kind", "op": "==", "value": "blob"}
        )
        looked_up = yield from skv.get("svr", 2, 0, "region")
        data = yield from bake.read("svr", 1, looked_up, 0)
        return docs, looked_up, data

    docs, looked_up, data = run_gen(sim, client_mi, flow())
    assert docs[0]["rid"] == looked_up
    assert data == b"blob" * 100


def test_concurrent_mixed_service_traffic():
    sim, server, client_mi, _ = make_composed_world()
    bake = BakeClient(client_mi)
    skv = SdskvClient(client_mi)
    done = []

    def bake_flow(i):
        rid = yield from bake.create_write_persist("svr", 1, bytes([i]) * 64)
        got = yield from bake.read("svr", 1, rid, 0)
        assert got == bytes([i]) * 64
        done.append(("bake", i))

    def skv_flow(i):
        yield from skv.put("svr", 2, i % 2, f"k{i}", i * i)
        v = yield from skv.get("svr", 2, i % 2, f"k{i}")
        assert v == i * i
        done.append(("skv", i))

    for i in range(6):
        client_mi.client_ult(bake_flow(i), name=f"b{i}")
        client_mi.client_ult(skv_flow(i), name=f"s{i}")
    assert sim.run_until(lambda: len(done) == 12, limit=5.0)


def test_sonata_update_in_place():
    sim, server, client_mi, _ = make_composed_world()
    sonata = SonataClient(client_mi)

    def flow():
        yield from sonata.create_database("svr", 3, "c")
        yield from sonata.store_multi(
            "svr", 3, "c",
            [{"id": i, "state": "new", "score": i} for i in range(10)],
        )
        n = yield from sonata.update(
            "svr", 3, "c",
            {"field": "score", "op": ">=", "value": 5},
            {"state": "hot"},
        )
        hot = yield from sonata.filter(
            "svr", 3, "c", {"field": "state", "op": "==", "value": "hot"}
        )
        return n, hot

    n, hot = run_gen(sim, client_mi, flow())
    assert n == 5
    assert [d["id"] for d in hot] == [5, 6, 7, 8, 9]


def test_composed_process_callpaths_distinguish_providers():
    """With three providers on one process, callpaths still resolve per
    RPC name and the process appears once as the target entity."""
    from repro.symbiosys.analysis import profile_summary

    sim, server, client_mi, collector = make_composed_world(Stage.FULL)
    bake = BakeClient(client_mi)
    skv = SdskvClient(client_mi)

    def flow():
        yield from bake.create("svr", 1, 128)
        yield from skv.put("svr", 2, 0, "k", 1)

    run_gen(sim, client_mi, flow())
    summary = profile_summary(collector)
    names = {row.name for row in summary.rows}
    assert "bake_create_rpc" in names
    assert "sdskv_put_rpc" in names
    for row in summary.rows:
        assert row.target_counts == {"svr": 1}
