#!/usr/bin/env python3
"""HEPnOS tuning walkthrough: from a bad configuration to a good one.

Replays the paper's §V-C methodology on the simulated stack, using
SYMBIOSYS output at each step to decide the next configuration change:

  C1 -> C2   too few execution streams (target handler time)
  C2 -> C3   too many databases (blocked-ULT serialization)
  C5 -> C6   OFI event queue backed up (num_ofi_events_read pegged)
  C6 -> C7   dedicated client progress thread (unaccounted time)

Run:  python examples/hepnos_tuning.py          (~30 s)
"""

import numpy as np

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)

EVENTS = 2048


def step(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    # ---- Step 1: too few execution streams --------------------------------
    step("Step 1 -- C1 vs C2: is the target starved of execution streams?")
    c1 = run_hepnos_experiment(TABLE_IV["C1"], events_per_client=EVENTS)
    c2 = run_hepnos_experiment(TABLE_IV["C2"], events_per_client=EVENTS)
    rows = []
    for r in (c1, c2):
        rows.append({
            "config": r.config.name,
            "threads": r.config.threads,
            "cumulative target RPC time": format_seconds(r.cumulative_target_time),
            "handler share": f"{100 * r.handler_time_fraction:.1f}%",
        })
    print(ascii_table(rows))
    print(f"-> C1 wastes {100 * c1.handler_time_fraction:.1f}% of target time "
          f"in the Argobots handler pool; adding 15 ESs (C2) improves the "
          f"cumulative time by "
          f"{100 * (1 - c2.cumulative_target_time / c1.cumulative_target_time):.1f}%")

    # ---- Step 2: too many databases ---------------------------------------
    step("Step 2 -- C2 vs C3: is the map backend serializing under bursts?")
    c3 = run_hepnos_experiment(TABLE_IV["C3"], events_per_client=EVENTS)
    rows = []
    for r in (c2, c3):
        blocked = np.array([b for _, b, _ in r.blocked_samples()])
        rows.append({
            "config": r.config.name,
            "databases": r.config.databases,
            "put_packed RPCs": r.rpcs_issued,
            "blocked ULTs max": int(blocked.max()),
            "cumulative target RPC time": format_seconds(r.cumulative_target_time),
        })
    print(ascii_table(rows))
    print(f"-> fewer databases mean fewer (larger) RPCs: C3 improves on C2 by "
          f"{100 * (1 - c3.cumulative_target_time / c2.cumulative_target_time):.1f}% "
          f"and the blocked-ULT spikes collapse")

    # ---- Step 3: low batch size & the OFI queue ---------------------------
    step("Step 3 -- C5 vs C6 vs C7: where does the time go with batch=1?")
    runs = {
        name: run_hepnos_experiment(
            TABLE_IV[name], events_per_client=EVENTS, pipeline_width=64
        )
        for name in ("C5", "C6", "C7")
    }
    rows = []
    for name, r in runs.items():
        ofi = np.array([v for _, v in r.ofi_series()])
        rows.append({
            "config": name,
            "OFI_max_events": r.config.ofi_max_events,
            "progress thread": "yes" if r.config.client_progress_thread else "no",
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "unaccounted share": f"{100 * r.unaccounted_fraction:.1f}%",
            "ofi reads mean": float(ofi.mean()),
        })
    print(ascii_table(rows))
    c5, c6, c7 = runs["C5"], runs["C6"], runs["C7"]
    print(f"-> C5's num_ofi_events_read pegs at 16: the OFI queue is backed "
          f"up and {100 * c5.unaccounted_fraction:.0f}% of RPC time is "
          f"unaccounted.  Raising the threshold (C6) recovers "
          f"{100 * (1 - c6.cumulative_origin_time / c5.cumulative_origin_time):.0f}%;"
          f" a dedicated progress ES (C7) recovers another "
          f"{100 * (1 - c7.cumulative_origin_time / c6.cumulative_origin_time):.0f}%.")


if __name__ == "__main__":
    main()
