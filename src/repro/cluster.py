"""One-stop construction of a simulated Mochi cluster.

Every experiment used to assemble the same boilerplate by hand: a
:class:`~repro.sim.Simulator`, a :class:`~repro.net.Fabric`, a
:class:`~repro.symbiosys.SymbiosysCollector`, and one
:class:`~repro.margo.MargoInstance` per process, each wired to a fresh
instrumentation object.  :class:`Cluster` bundles that into a single
builder with a context-manager lifecycle::

    with Cluster(seed=42, stage=Stage.FULL) as cluster:
        server = cluster.process("server", "node1", n_handler_es=2)
        client = cluster.process("cli", "node0")
        ...
        cluster.run_until(lambda: done, limit=1.0)
        print(profile_summary(cluster.collector).render())

On exit every process is finalized and the event queue drained, so a
cluster tears down without leaking pending simulator events
(:attr:`leaked_events` reports any that survived the drain).

The old construction paths keep working -- ``Cluster`` only composes the
public constructors; nothing below depends on it.

Faults: pass a :class:`~repro.faults.FaultPlan` and the cluster creates a
:class:`~repro.faults.FaultInjector` seeded from the cluster's
:class:`~repro.sim.RngRegistry`, installs it on the fabric, and attaches
it to every process -- the whole campaign replays identically from
``seed``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from .faults import FaultInjector, FaultPlan
from .margo import Instrumentation, MargoConfig, MargoInstance, RetryPolicy
from .mercury import HGConfig, SerializationModel
from .net import Fabric, FabricConfig
from .sim import LocalClock, RngRegistry, Simulator
from .symbiosys import Stage, SymbiosysCollector
from .symbiosys.monitor import Monitor, MonitorConfig
from .validate import InvariantMonitor, ValidationConfig

__all__ = ["Cluster"]


class Cluster:
    """A simulated Mochi deployment: simulator + fabric + processes +
    instrumentation, built through one object.

    ``preset`` is duck-typed: anything with ``serialization``, ``fabric``,
    ``ctx_switch_cost`` attributes and an ``hg_config()`` method works
    (see :class:`repro.experiments.presets.Preset`).  Explicit keyword
    arguments override the preset's values.

    ``stage`` selects the SYMBIOSYS support level for the bundled
    collector; ``None`` disables instrumentation entirely (the Baseline).
    ``instrumentation_factory`` overrides the collector wiring with any
    callable returning an :class:`~repro.margo.Instrumentation` per
    process.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        stage: Optional[Stage] = Stage.FULL,
        preset: Any = None,
        fabric_config: Optional[FabricConfig] = None,
        hg_config: Optional[HGConfig] = None,
        serialization: Optional[SerializationModel] = None,
        ctx_switch_cost: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        instrumentation_factory: Optional[Callable[[], Instrumentation]] = None,
        monitoring: Union[None, bool, MonitorConfig] = None,
        validate: Union[None, bool, ValidationConfig] = None,
        store: Union[None, str, Any] = None,
        run_name: Optional[str] = None,
        run_tags: Optional[dict] = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        #: Requested parallel-kernel worker count.  A monolithic
        #: ``Cluster`` is one event queue and always executes serially;
        #: deploy-time drivers (``repro.experiments.parallel_scale``,
        #: the ``scale --workers`` CLI) consume this hint via
        #: :meth:`PartitionPlan.from_topology
        #: <repro.sim.parallel.PartitionPlan.from_topology>`, which
        #: bin-packs the deployed node groups into LPs (each owning a
        #: private Cluster) without hand-written LP declarations.
        #: Recorded in the run tags so stored runs keep their
        #: execution shape.
        self.workers = workers
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        #: Seed of the cluster's RNG registry (recorded by the store).
        self.seed = seed
        #: Persistent performance store sink: a path, a
        #: :class:`~repro.store.PerfStore`, or a ``StoreWriter``.  When
        #: set, :meth:`shutdown` archives the run (monitor telemetry,
        #: traces, profiles) via :func:`repro.store.record_cluster_run`;
        #: :attr:`run_id` then holds the recorded run's id.
        self.store = store
        self.run_name = run_name
        self.run_tags = dict(run_tags) if run_tags else {}
        if workers > 1:
            self.run_tags.setdefault("workers", str(workers))
        self.run_id: Optional[int] = None

        if fabric_config is None and preset is not None:
            fabric_config = preset.fabric
        if hg_config is None and preset is not None:
            hg_config = preset.hg_config()
        if serialization is None and preset is not None:
            serialization = preset.serialization
        if ctx_switch_cost is None:
            ctx_switch_cost = (
                preset.ctx_switch_cost if preset is not None else 50e-9
            )

        self.fabric = Fabric(
            self.sim, fabric_config, rng=self.rng.stream("fabric")
        )
        self._hg_config = hg_config
        self._serialization = serialization
        self._ctx_switch_cost = ctx_switch_cost
        #: Cluster-wide default retry policy for new processes.
        self.retry = retry

        self.collector: Optional[SymbiosysCollector] = (
            SymbiosysCollector(stage) if stage is not None else None
        )
        self._instr_factory = instrumentation_factory

        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            self.injector = FaultInjector(
                self.sim, fault_plan, rng=self.rng.fork("faults")
            ).install(self.fabric)

        #: Online telemetry (``monitoring=True`` for defaults, or pass a
        #: :class:`~repro.symbiosys.monitor.MonitorConfig`).  Started
        #: immediately; stopped by :meth:`shutdown` before the drain.
        self.monitor: Optional[Monitor] = None
        if monitoring:
            mon_config = (
                monitoring
                if isinstance(monitoring, MonitorConfig)
                else MonitorConfig()
            )
            self.monitor = Monitor(self.sim, mon_config, fabric=self.fabric)
            self.monitor.start()

        #: Runtime invariant checking (``validate=True`` for defaults, or
        #: pass a :class:`~repro.validate.ValidationConfig`).  Attached to
        #: every process; finalized by :meth:`shutdown` after the drain.
        self.validator: Optional[InvariantMonitor] = None
        if validate:
            vconfig = (
                validate
                if isinstance(validate, ValidationConfig)
                else ValidationConfig()
            )
            self.validator = InvariantMonitor(
                self.sim, fabric=self.fabric, config=vconfig
            )

        self.processes: dict[str, MargoInstance] = {}
        #: Pending simulator events that survived the shutdown drain
        #: (0 after a clean teardown).
        self.leaked_events = 0
        self._shutdown_done = False
        self._shutdown_hooks: list[Callable[[], None]] = []

    def add_shutdown_hook(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the start of :meth:`shutdown`, before the
        event-queue drain.  Services with self-rescheduling sim-clock
        loops (e.g. the sharded service's membership heartbeat) register
        their ``stop`` here so the drain can terminate."""
        self._shutdown_hooks.append(callback)

    # -- building -----------------------------------------------------------

    def process(
        self,
        addr: str,
        node: Optional[str] = None,
        *,
        config: Optional[MargoConfig] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[LocalClock] = None,
        instrumentation: Optional[Instrumentation] = None,
        **config_kw: Any,
    ) -> MargoInstance:
        """Create one Mochi process on ``node`` (default: its own node).

        ``config_kw`` are :class:`~repro.margo.MargoConfig` fields
        (``n_handler_es=2``, ``use_progress_thread=True``, ...) for the
        common case; pass ``config`` explicitly for full control.
        """
        if addr in self.processes:
            raise ValueError(f"duplicate process address {addr!r}")
        if config is not None and config_kw:
            raise ValueError("pass either config or config keywords, not both")
        if config is None and config_kw:
            config = MargoConfig(**config_kw)
        if instrumentation is None:
            if self._instr_factory is not None:
                instrumentation = self._instr_factory()
            elif self.collector is not None:
                instrumentation = self.collector.create_instrumentation()
        mi = MargoInstance(
            self.sim,
            self.fabric,
            addr,
            node if node is not None else f"node-{addr}",
            config=config,
            hg_config=self._hg_config,
            serialization=self._serialization,
            clock=clock,
            instrumentation=instrumentation,
            retry=retry if retry is not None else self.retry,
            rng=self.rng.stream(f"margo.{addr}"),
            ctx_switch_cost=self._ctx_switch_cost,
        )
        if self.injector is not None:
            self.injector.attach(mi)
            trace = getattr(mi.instr, "trace", None)
            if trace is not None:
                self.injector.bind_trace(addr, trace)
        if self.monitor is not None:
            self.monitor.attach(mi)
        if self.validator is not None:
            # Last, so its lifecycle checker wraps the instrumentation the
            # injector and collector already saw.
            self.validator.attach(mi)
        self.processes[addr] = mi
        return mi

    def __getitem__(self, addr: str) -> MargoInstance:
        return self.processes[addr]

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        return self.sim.run(until=until, max_events=max_events)

    def run_until(self, predicate: Callable[[], bool], limit: float) -> bool:
        return self.sim.run_until(predicate, limit)

    def run_until_event(self, event, limit: Optional[float] = None) -> bool:
        """Event-driven wait: run until ``event`` fires (or ``limit``).

        Preferred over :meth:`run_until` on hot paths -- it stops exactly
        at the firing instant with no per-event predicate cost and no
        idle tail."""
        return self.sim.run_until_event(event, limit=limit)

    # -- reporting ----------------------------------------------------------

    def resilience_report(self) -> dict[str, dict[str, int]]:
        """Per-process degraded-mode gauges, keyed by address."""
        return {
            addr: mi.resilience_counters()
            for addr, mi in self.processes.items()
        }

    def fault_events(self) -> list[tuple]:
        """The injector's deterministic fault-event trace (empty without
        a fault plan)."""
        return self.injector.event_trace() if self.injector is not None else []

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, drain: bool = True) -> None:
        """Finalize every process and drain the event queue.

        Idempotent.  After a drain, :attr:`leaked_events` holds the number
        of events still pending (0 for a clean teardown).
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        for hook in self._shutdown_hooks:
            hook()
        if self.monitor is not None:
            # The sampler must stop before the drain -- a self-
            # rescheduling tick would keep the event queue alive forever.
            self.monitor.stop()
        if self.injector is not None:
            # A scheduled restart must not revive a finalized process.
            self.injector.disarm()
        for mi in self.processes.values():
            mi.finalize()
        if drain:
            self.sim.run()
        self.leaked_events = self.sim.pending_events
        if self.validator is not None:
            # Fault campaigns legitimately strand late responses and
            # abandoned handles; relax the drain invariants for them.
            self.validator.finalize(
                allow_undrained=self.injector is not None
            )
        if self.store is not None:
            # Lazy import: repro.store pulls in the symbiosys export
            # surface, which this module must not import eagerly.
            from .store import record_cluster_run

            self.run_id = record_cluster_run(
                self.store,
                self,
                name=self.run_name or f"cluster-seed{self.seed}",
                tags=self.run_tags,
            )

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.shutdown()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(processes={len(self.processes)}, now={self.sim.now}, "
            f"faults={'on' if self.injector is not None else 'off'})"
        )
