"""SDSKV database snapshots: real serialization for REMI migration.

Mochi migrates SDSKV databases by snapshotting them to files and moving
the files with REMI.  This module provides the codec: a database's
key/value pairs encode to bytes (JSON with explicit tagging for the
non-JSON payload types the services use -- bytes and tuples) and decode
back losslessly.  The migration helper composes the pieces: snapshot ->
REMI fileset -> bulk transfer -> restore on the destination provider.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Generator

from .backends import KVDatabase

__all__ = [
    "encode_value",
    "decode_value",
    "dump_database",
    "load_snapshot",
    "migrate_database",
]


def encode_value(value: Any):
    """JSON-encodable representation of a service payload value."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if "__b64__" in value or "__tuple__" in value:
            raise ValueError("dict collides with snapshot tag keys")
        return {k: encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot snapshot value of type {type(value).__name__}")


def decode_value(raw: Any) -> Any:
    if isinstance(raw, dict):
        if "__b64__" in raw:
            return base64.b64decode(raw["__b64__"])
        if "__tuple__" in raw:
            return tuple(decode_value(v) for v in raw["__tuple__"])
        return {k: decode_value(v) for k, v in raw.items()}
    if isinstance(raw, list):
        return [decode_value(v) for v in raw]
    return raw


def dump_database(db: KVDatabase) -> bytes:
    """Snapshot every pair of ``db`` to bytes (no simulated cost: the
    caller charges transfer/installation through REMI)."""
    payload = [[k, encode_value(v)] for k, v in sorted(db._data.items())]
    return json.dumps(payload).encode("utf-8")


def load_snapshot(db: KVDatabase, snapshot: bytes) -> Generator:
    """Insert a snapshot's pairs into ``db`` (generator; pays the
    backend's insert costs like any other write)."""
    pairs = [
        (k, decode_value(raw)) for k, raw in json.loads(snapshot.decode())
    ]
    yield from db.put_many(pairs)
    return len(pairs)


def migrate_database(
    remi_client,
    source_db: KVDatabase,
    target_addr: str,
    target_provider_id: int,
    target_db: KVDatabase,
    *,
    name: str,
) -> Generator:
    """Move a database's contents to another provider through REMI.

    Snapshot -> fileset -> ``remi_migrate_rpc`` (bulk transfer + install)
    -> restore into the destination backend.  Returns the pair count.
    """
    from ..remi import RemiFileset

    snapshot = dump_database(source_db)
    fileset = RemiFileset(name=name, files={"db.snapshot": snapshot})
    out = yield from remi_client.migrate(target_addr, target_provider_id, fileset)
    if out["ret"] != 0:
        raise RuntimeError(f"REMI migration failed: {out.get('err')}")
    n = yield from load_snapshot(target_db, snapshot)
    return n
