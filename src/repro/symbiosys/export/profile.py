"""Persisting collected performance data.

The paper's workflow writes per-process profiles and traces at the end
of execution, then runs the analysis scripts offline.  This module
provides that serialization boundary:

* :func:`profile_to_rows` / :func:`write_profile_csv` -- the callpath
  profile as flat rows (one per key x interval),
* :func:`events_to_json` / :func:`load_events_json` -- a lossless
  round-trip for trace events, so traces can be stitched in a separate
  process or archived next to the run.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Optional

from ..callpath import CallpathRegistry
from ..profiling import ProfileStore
from ..tracing import EventKind, TraceEvent

__all__ = [
    "profile_to_rows",
    "write_profile_csv",
    "events_to_json",
    "load_events_json",
]

_CSV_COLUMNS = (
    "callpath",
    "callpath_name",
    "origin",
    "target",
    "interval",
    "count",
    "total",
    "min",
    "max",
    "mean",
)


def profile_to_rows(
    store: ProfileStore, registry: Optional[CallpathRegistry] = None
) -> list[dict]:
    """Flatten a profile store into sortable dict rows."""
    rows = []
    for key in store.keys():
        for interval, stats in store.intervals_for(key).items():
            rows.append(
                {
                    "callpath": f"{key.callpath:#018x}",
                    "callpath_name": (
                        registry.decode(key.callpath) if registry else ""
                    ),
                    "origin": key.origin,
                    "target": key.target,
                    "interval": interval,
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.minimum,
                    "max": stats.maximum,
                    "mean": stats.mean,
                }
            )
    rows.sort(key=lambda r: (-r["total"], r["callpath"], r["interval"]))
    return rows


def write_profile_csv(
    store: ProfileStore,
    registry: Optional[CallpathRegistry] = None,
    *,
    path: Optional[str] = None,
) -> str:
    """Write the profile as CSV; returns the CSV text (and writes the
    file when ``path`` is given)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in profile_to_rows(store, registry):
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        with open(path, "w", newline="") as fh:
            fh.write(text)
    return text


def _event_to_dict(ev: TraceEvent) -> dict:
    return {
        "kind": ev.kind.value,
        "request_id": ev.request_id,
        "order": ev.order,
        "lamport": ev.lamport,
        "process": ev.process,
        "local_ts": ev.local_ts,
        "true_ts": ev.true_ts,
        "rpc_name": ev.rpc_name,
        "callpath": ev.callpath,
        "span_id": ev.span_id,
        "parent_span_id": ev.parent_span_id,
        "provider_id": ev.provider_id,
        "data": ev.data,
        "pvars": ev.pvars,
        "sysstats": ev.sysstats,
    }


def events_to_json(
    events: Iterable[TraceEvent], *, path: Optional[str] = None, indent: int = 0
) -> str:
    """Serialize trace events to a JSON array (optionally to a file)."""
    doc = json.dumps(
        [_event_to_dict(ev) for ev in events],
        indent=indent or None,
    )
    if path is not None:
        with open(path, "w") as fh:
            fh.write(doc)
    return doc


def load_events_json(source: str) -> list[TraceEvent]:
    """Inverse of :func:`events_to_json` (``source`` is JSON text)."""
    out = []
    for raw in json.loads(source):
        out.append(
            TraceEvent(
                kind=EventKind(raw["kind"]),
                request_id=raw["request_id"],
                order=raw["order"],
                lamport=raw["lamport"],
                process=raw["process"],
                local_ts=raw["local_ts"],
                true_ts=raw["true_ts"],
                rpc_name=raw["rpc_name"],
                callpath=raw["callpath"],
                span_id=raw["span_id"],
                parent_span_id=raw["parent_span_id"],
                provider_id=raw.get("provider_id", 0),
                data=raw.get("data", {}),
                pvars=raw.get("pvars", {}),
                sysstats=raw.get("sysstats", {}),
            )
        )
    return out
