"""Critical-path engine tests: the sum-to-total invariant as a
property across seeds, services, and fault plans; blame attribution;
finding annotation; determinism."""

import pytest

from repro.faults import DelayRule, DropRule, FaultPlan, RestartFault
from repro.margo import MargoTimeoutError, RetryPolicy
from repro.symbiosys import Stage
from repro.symbiosys.critical import (
    CATEGORIES,
    WAIT_CATEGORIES,
    analyze_collector,
    annotate_findings,
    dominant_wait_state,
)
from repro.symbiosys.monitor import MonitorConfig

from ..conftest import make_echo_cluster, run_client_calls

_FAULT_PLAN = FaultPlan(
    name="critical-faults",
    wire_rules=[
        # Every first-flight request is lost: retries are guaranteed.
        DropRule(kind="rpc_request", probability=1.0, end=20e-6),
        DelayRule(kind="rpc_response", extra=50e-6, spread=50e-6,
                  probability=0.3),
    ],
    process_faults=[RestartFault(addr="svr", at=1e-3, downtime=0.5e-3)],
)
_RETRY = RetryPolicy(max_attempts=4, timeout=0.5e-3, backoff=0.1e-3)


def run_echo(seed=0, n_calls=12, plan=None, retry=None, monitoring=True):
    world = make_echo_cluster(
        seed=seed, stage=Stage.FULL, plan=plan, retry=retry,
        monitoring=MonitorConfig(interval=25e-6) if monitoring else None,
    )
    results = []

    def one(i):
        try:
            out = yield from world.client.forward("svr", "echo", {"i": i})
            results.append(("ok", out))
        except MargoTimeoutError:
            results.append(("timeout", i))

    for i in range(n_calls):
        world.client.client_ult(one(i), name=f"c{i}")
    assert world.sim.run_until(lambda: len(results) == n_calls, limit=5.0)
    world.cluster.shutdown()
    return world


def assert_exact(report):
    """The tentpole invariant: per request, category durations are
    integers that sum exactly -- not approximately -- to the span."""
    report.check_invariant()
    for bd in report.breakdowns:
        assert set(bd.categories) <= set(CATEGORIES)
        assert all(isinstance(v, int) for v in bd.categories.values())
        assert sum(bd.categories.values()) == bd.total_ps
        # Segments re-tell the same story: per category, segment
        # durations sum to that category's figure.
        per_cat = {}
        for cat, _start, dur in bd.segments:
            per_cat[cat] = per_cat.get(cat, 0) + dur
        for cat, ps in per_cat.items():
            assert ps == bd.categories[cat]


class TestSumToTotalProperty:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_healthy_echo(self, seed):
        world = run_echo(seed=seed)
        report = analyze_collector(
            world.cluster.collector, world.cluster.monitor
        )
        assert report.n_requests > 0
        assert report.n_incomplete == 0
        assert_exact(report)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_under_faults_and_retries(self, seed):
        world = run_echo(seed=seed, n_calls=16, plan=_FAULT_PLAN,
                         retry=_RETRY)
        report = analyze_collector(
            world.cluster.collector, world.cluster.monitor
        )
        assert report.n_requests > 0
        assert_exact(report)

    def test_without_monitor_degrades_not_breaks(self):
        # No scheduler slices: the CQ-wait split falls back to pure
        # backlog, but the invariant still holds exactly.
        world = run_echo(monitoring=False)
        report = analyze_collector(world.cluster.collector, None)
        assert report.n_requests > 0
        assert_exact(report)
        totals = report.category_totals()
        assert totals["progress_starvation"] == 0

    def test_hepnos_service(self):
        from repro.experiments.configs import TABLE_IV
        from repro.experiments.hepnos import run_hepnos_experiment

        result = run_hepnos_experiment(
            TABLE_IV["C5"], events_per_client=32, pipeline_width=16,
            monitoring=MonitorConfig(interval=50e-6),
        )
        report = analyze_collector(result.collector, result.monitor)
        assert report.n_requests > 0
        assert_exact(report)
        # The Fig 11 regime: CQ-side waits dominate batch-1 loads.
        totals = report.category_totals()
        cq = totals["ofi_cq_backlog"] + totals["progress_starvation"]
        assert cq > 0


class TestCategories:
    def test_concurrent_requests_queue_on_one_handler_pool(self):
        world = run_echo(n_calls=20)
        report = analyze_collector(
            world.cluster.collector, world.cluster.monitor
        )
        totals = report.category_totals()
        assert totals["handler_pool_queue"] > 0
        # Blame names other requests' RPCs as pool occupants.
        blamed = {
            e.occupant
            for bd in report.breakdowns
            for e in bd.blame
            if e.category == "handler_pool_queue"
        }
        assert "echo" in blamed

    def test_retry_backoff_is_aggregate(self):
        world = run_echo(n_calls=16, plan=_FAULT_PLAN, retry=_RETRY)
        report = analyze_collector(
            world.cluster.collector, world.cluster.monitor
        )
        retries = world.cluster.collector.all_retries()
        assert retries, "fault plan must force at least one retry"
        assert report.retry_by_op
        # Per-request categories never carry backoff (each attempt is
        # its own request id); it is an aggregate per-operation figure.
        for bd in report.breakdowns:
            assert bd.categories["retry_backoff"] == 0

    def test_interference_matrix_shape(self):
        world = run_echo(n_calls=20)
        report = analyze_collector(
            world.cluster.collector, world.cluster.monitor
        )
        matrix = report.interference_matrix()
        assert "echo" in matrix
        assert all(
            isinstance(v, int) and v > 0
            for row in matrix.values() for v in row.values()
        )


class TestFindingAnnotation:
    def test_findings_carry_dominant_wait_state(self):
        world = run_echo(n_calls=24)
        monitor = world.cluster.monitor
        report = analyze_collector(world.cluster.collector, monitor)
        annotated = annotate_findings(monitor.findings, report)
        assert len(annotated) == len(monitor.findings)
        for f in annotated:
            assert f.wait_state in WAIT_CATEGORIES

    def test_fallback_when_no_breakdown_overlaps(self):
        world = run_echo(n_calls=8)
        monitor = world.cluster.monitor
        # A finding far outside every span window uses the detector's
        # fallback mapping rather than overlap evidence.
        from repro.symbiosys.monitor import Finding

        f = Finding(time=99.0, detector="progress_starvation",
                    process="svr", message="late", value=1.0)
        report = analyze_collector(world.cluster.collector, monitor)
        assert dominant_wait_state(f, report.breakdowns) == \
            "progress_starvation"


class TestDeterminism:
    def test_same_seed_same_breakdowns(self):
        reports = []
        for _ in range(2):
            world = run_echo(seed=5, n_calls=10)
            reports.append(analyze_collector(
                world.cluster.collector, world.cluster.monitor
            ))
        a, b = reports
        assert len(a.breakdowns) == len(b.breakdowns)
        for x, y in zip(a.breakdowns, b.breakdowns):
            assert x == y
