"""Tests for the SDSKV microservice and its backends."""

import pytest

from repro.argobots import AbtRuntime
from repro.services.sdskv import (
    BACKENDS,
    MapDatabase,
    SdskvClient,
    SdskvProvider,
    make_database,
)
from repro.sim import Simulator
from .conftest import make_service_world, run_ult


# ------------------------------------------------------------ backend units


def make_db(backend="map", n_es=4):
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    for _ in range(n_es):
        rt.create_xstream(pool)
    db = make_database(backend, rt)
    return sim, rt, pool, db


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_put_get_roundtrip(backend):
    sim, rt, pool, db = make_db(backend)
    out = {}

    def body():
        yield from db.put("k1", {"v": 1})
        out["v"] = yield from db.get("k1")
        out["missing"] = yield from db.get("nope")

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["v"] == {"v": 1}
    assert out["missing"] is None
    assert len(db) == 1


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_list_keyvals_prefix(backend):
    sim, rt, pool, db = make_db(backend)
    out = {}

    def body():
        yield from db.put_many([(f"a:{i}", i) for i in range(5)])
        yield from db.put_many([(f"b:{i}", i) for i in range(3)])
        out["a"] = yield from db.list_keyvals("a:")
        out["limited"] = yield from db.list_keyvals("a:", max_items=2)
        out["all"] = yield from db.list_keyvals("")

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert [k for k, _ in out["a"]] == [f"a:{i}" for i in range(5)]
    assert len(out["limited"]) == 2
    assert len(out["all"]) == 8


def test_map_backend_serializes_inserts():
    """Concurrent put_many batches on one map database strictly
    serialize -- the Figure 10 mechanism."""
    sim, rt, pool, db = make_db("map")
    spans = []

    def writer(tag):
        start = sim.now
        yield from db.put_many([(f"{tag}:{i}", b"x" * 64) for i in range(100)])
        spans.append((start, sim.now))

    for tag in range(4):
        rt.spawn(writer(tag), pool)
    sim.run(until=5.0)
    assert len(spans) == 4
    # All writers started together, but completions are staggered by the
    # (serialized) batch insert time.
    finish = sorted(e for _, e in spans)
    gaps = [b - a for a, b in zip(finish, finish[1:])]
    batch_time = min(finish)
    for gap in gaps:
        assert gap > 0.5 * batch_time


def test_leveldb_backend_allows_parallel_inserts():
    sim, rt, pool, db = make_db("leveldb")
    finishes = []

    def writer(tag):
        yield from db.put_many([(f"{tag}:{i}", b"x" * 64) for i in range(100)])
        finishes.append(sim.now)

    for tag in range(4):
        rt.spawn(writer(tag), pool)
    sim.run(until=5.0)
    # With 4 ESs and no serialization all four batches finish together.
    assert max(finishes) - min(finishes) < 0.1 * max(finishes)


def test_erase_removes_key():
    sim, rt, pool, db = make_db("map")
    out = {}

    def body():
        yield from db.put("k", 1)
        yield from db.erase("k")
        out["v"] = yield from db.get("k")

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert out["v"] is None
    assert len(db) == 0


def test_unknown_backend_rejected():
    sim = Simulator()
    rt = AbtRuntime(sim)
    with pytest.raises(ValueError, match="unknown SDSKV backend"):
        make_database("rocksdb", rt)


def test_bytes_stored_counts_unique_keys():
    sim, rt, pool, db = make_db("map")

    def body():
        yield from db.put("k", "vvvv")
        first = db.bytes_stored
        yield from db.put("k", "wwww")  # overwrite: no growth
        assert db.bytes_stored == first

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert db.bytes_stored > 0


# ------------------------------------------------------------ provider RPCs


def test_provider_put_get_over_rpc(world):
    SdskvProvider(world.server, provider_id=2, n_databases=2)
    cli = SdskvClient(world.client)

    def body():
        yield from cli.put("svr", 2, 0, "key-a", {"x": 1})
        yield from cli.put("svr", 2, 1, "key-b", {"x": 2})
        va = yield from cli.get("svr", 2, 0, "key-a")
        vb = yield from cli.get("svr", 2, 1, "key-b")
        cross = yield from cli.get("svr", 2, 1, "key-a")  # wrong db
        return va, vb, cross

    va, vb, cross = run_ult(world, body())
    assert va == {"x": 1}
    assert vb == {"x": 2}
    assert cross is None


def test_provider_put_packed_bulk(world):
    provider = SdskvProvider(world.server, provider_id=2)
    cli = SdskvClient(world.client)
    pairs = [(f"k{i}", b"v" * 32) for i in range(50)]

    def body():
        n = yield from cli.put_packed("svr", 2, 0, pairs)
        items = yield from cli.list_keyvals("svr", 2, 0)
        return n, items

    n, items = run_ult(world, body())
    assert n == 50
    assert len(items) == 50
    assert provider.total_items == 50
    assert dict(items)["k7"] == b"v" * 32


def test_provider_exists_and_erase(world):
    SdskvProvider(world.server, provider_id=2)
    cli = SdskvClient(world.client)

    def body():
        yield from cli.put("svr", 2, 0, "k", 1)
        e1 = yield from cli.exists("svr", 2, 0, "k")
        yield from cli.erase("svr", 2, 0, "k")
        e2 = yield from cli.exists("svr", 2, 0, "k")
        return e1, e2

    e1, e2 = run_ult(world, body())
    assert e1 is True
    assert e2 is False


def test_provider_bad_db_id_fails_loudly(world):
    SdskvProvider(world.server, provider_id=2, n_databases=1)
    cli = SdskvClient(world.client)

    def body():
        yield from cli.put("svr", 2, 5, "k", 1)

    world.client.client_ult(body())
    from repro.margo import RemoteRpcError

    with pytest.raises(RemoteRpcError, match="db_id 5 out of range"):
        world.sim.run(until=1.0)


def test_provider_validates_database_count(world):
    with pytest.raises(ValueError):
        SdskvProvider(world.server, n_databases=0)


def test_provider_memory_gauge_grows(world):
    SdskvProvider(world.server, provider_id=2)
    cli = SdskvClient(world.client)

    def body():
        yield from cli.put_packed(
            "svr", 2, 0, [(f"k{i}", b"x" * 100) for i in range(10)]
        )

    run_ult(world, body())
    assert world.server.stats.memory_bytes > 1000


def test_list_keyvals_scan_cost_scales(world):
    """Listing a fuller database takes longer (the Figure 6 driver)."""
    SdskvProvider(world.server, provider_id=2)
    cli = SdskvClient(world.client)
    times = {}

    def body():
        t0 = world.sim.now
        yield from cli.list_keyvals("svr", 2, 0)
        times["small"] = world.sim.now - t0
        yield from cli.put_packed(
            "svr", 2, 0, [(f"k{i}", b"x") for i in range(2000)]
        )
        t0 = world.sim.now
        yield from cli.list_keyvals("svr", 2, 0)
        times["large"] = world.sim.now - t0

    run_ult(world, body(), until=5.0)
    assert times["large"] > 5 * times["small"]
