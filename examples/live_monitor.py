#!/usr/bin/env python3
"""Online telemetry walkthrough: watch a faulted Sonata campaign live.

Runs the monitored campaign twice from one seed and asserts the full
reports -- including the sha256 digests of the Prometheus snapshot, the
CSV time-series, the Perfetto timeline, and the findings log -- are
byte-identical (the determinism guarantee the telemetry layer makes;
see docs/observability.md).  Then prints the report and writes the
artifacts, ready for ``ui.perfetto.dev`` or any Prometheus tooling.

Run:  python examples/live_monitor.py [seed] [out_dir]
"""

import sys

from repro.experiments.monitor import run_monitor_experiment


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "monitor-artifacts"

    first = run_monitor_experiment(seed=seed)
    second = run_monitor_experiment(seed=seed)
    assert first.report() == second.report(), "monitored run not deterministic"

    print(f"two runs with seed={seed} produced byte-identical telemetry\n")
    print(first.report())

    paths = first.write_artifacts(out_dir)
    print("\nartifacts:")
    for path in paths:
        print(f"  {path}")
    print("\nload the .perfetto.json file at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
