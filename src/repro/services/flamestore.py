"""FlameStore: a Mochi service for distributed deep-learning workflows.

Cited by the paper as one of the services Mochi enables.  FlameStore
checkpoints neural-network models: a *master* keeps the model registry
(layer table, placement, status) while *storage workers* hold the layer
tensors in BAKE regions.  Clients register a model, push layers to their
assigned workers through the bulk path, and commit; a committed model
can be reloaded bit-exactly.

Composition: master provider (registry) + N x BAKE provider (tensors),
placement by round-robin over an SSG group -- a different shape from
Mobject/HEPnOS, which is the point of including it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoConfig, MargoInstance
from ..mercury import HGHandle
from ..net import Fabric
from ..sim import Simulator
from ..ssg import SSGGroup
from .bake import BakeClient, BakeProvider

__all__ = ["FlameStoreDeployment", "FlameStoreClient", "FlameStoreError"]

RPC_REGISTER = "flamestore_register_model"
RPC_COMMIT_LAYER = "flamestore_commit_layer"
RPC_COMMIT_MODEL = "flamestore_commit_model"
RPC_GET_MODEL = "flamestore_get_model"
RPC_LIST_MODELS = "flamestore_list_models"
_MASTER_RPCS = (
    RPC_REGISTER,
    RPC_COMMIT_LAYER,
    RPC_COMMIT_MODEL,
    RPC_GET_MODEL,
    RPC_LIST_MODELS,
)

PID_MASTER = 1
PID_BAKE = 1

_REGISTRY_COST = 1.0e-6


class FlameStoreError(RuntimeError):
    """Client-visible FlameStore failure."""


@dataclass
class _LayerInfo:
    name: str
    nbytes: int
    worker: str
    rid: Optional[int] = None  # BAKE region once committed


@dataclass
class _ModelInfo:
    name: str
    layers: dict[str, _LayerInfo] = field(default_factory=dict)
    committed: bool = False


class _Master:
    """The registry provider."""

    def __init__(self, mi: MargoInstance, group: SSGGroup):
        self.mi = mi
        self.group = group
        self.models: dict[str, _ModelInfo] = {}
        self._rr = 0
        mi.register(RPC_REGISTER, self._h_register, PID_MASTER)
        mi.register(RPC_COMMIT_LAYER, self._h_commit_layer, PID_MASTER)
        mi.register(RPC_COMMIT_MODEL, self._h_commit_model, PID_MASTER)
        mi.register(RPC_GET_MODEL, self._h_get_model, PID_MASTER)
        mi.register(RPC_LIST_MODELS, self._h_list_models, PID_MASTER)

    def _h_register(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_REGISTRY_COST)
        name = inp["model"]
        if name in self.models:
            yield from mi.respond(handle, {"ret": -1, "err": "exists"})
            return
        model = _ModelInfo(name=name)
        placement = {}
        for layer_name, nbytes in inp["layers"]:
            worker = self.group.address_of(self._rr % self.group.size)
            self._rr += 1
            model.layers[layer_name] = _LayerInfo(
                name=layer_name, nbytes=nbytes, worker=worker
            )
            placement[layer_name] = worker
        self.models[name] = model
        yield from mi.respond(handle, {"ret": 0, "placement": placement})

    def _h_commit_layer(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_REGISTRY_COST)
        model = self.models.get(inp["model"])
        layer = model.layers.get(inp["layer"]) if model else None
        if layer is None:
            yield from mi.respond(handle, {"ret": -1, "err": "unknown layer"})
            return
        layer.rid = inp["rid"]
        yield from mi.respond(handle, {"ret": 0})

    def _h_commit_model(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_REGISTRY_COST)
        model = self.models.get(inp["model"])
        if model is None:
            yield from mi.respond(handle, {"ret": -1, "err": "unknown model"})
            return
        missing = [l.name for l in model.layers.values() if l.rid is None]
        if missing:
            yield from mi.respond(
                handle, {"ret": -1, "err": f"missing layers: {missing}"}
            )
            return
        model.committed = True
        yield from mi.respond(handle, {"ret": 0})

    def _h_get_model(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_REGISTRY_COST)
        model = self.models.get(inp["model"])
        if model is None:
            yield from mi.respond(handle, {"ret": -1, "err": "unknown model"})
            return
        table = {
            l.name: {"worker": l.worker, "rid": l.rid, "nbytes": l.nbytes}
            for l in model.layers.values()
        }
        yield from mi.respond(
            handle, {"ret": 0, "committed": model.committed, "layers": table}
        )

    def _h_list_models(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        yield from mi.get_input(handle)
        yield Compute(_REGISTRY_COST * max(1, len(self.models)))
        yield from mi.respond(
            handle,
            {
                "ret": 0,
                "models": sorted(
                    (m.name, m.committed) for m in self.models.values()
                ),
            },
        )


class FlameStoreDeployment:
    """Master + N storage workers."""

    def __init__(self) -> None:
        self.master: Optional[_Master] = None
        self.workers: list[MargoInstance] = []
        self.bake_providers: list[BakeProvider] = []
        self.group = SSGGroup("flamestore-workers")

    @classmethod
    def deploy(
        cls,
        sim: Simulator,
        fabric: Fabric,
        *,
        n_workers: int,
        n_handler_es: int = 2,
        instrumentation_factory=None,
    ) -> "FlameStoreDeployment":
        if n_workers < 1:
            raise ValueError("need at least one storage worker")
        dep = cls()
        mk_instr = instrumentation_factory or (lambda: None)
        for i in range(n_workers):
            mi = MargoInstance(
                sim,
                fabric,
                f"flame-worker{i}",
                f"fnode{i}",
                config=MargoConfig(n_handler_es=n_handler_es),
                instrumentation=mk_instr(),
            )
            dep.workers.append(mi)
            dep.bake_providers.append(BakeProvider(mi, PID_BAKE))
            dep.group.join(mi.addr)
        master_mi = MargoInstance(
            sim,
            fabric,
            "flame-master",
            "fnode0",
            config=MargoConfig(n_handler_es=n_handler_es),
            instrumentation=mk_instr(),
        )
        dep.master = _Master(master_mi, dep.group)
        return dep

    @property
    def master_addr(self) -> str:
        return self.master.mi.addr


class FlameStoreClient:
    """Workflow-side API: register -> write layers -> commit -> reload."""

    def __init__(self, mi: MargoInstance, deployment: FlameStoreDeployment):
        self.mi = mi
        self.deployment = deployment
        self.bake = BakeClient(mi)
        for rpc in _MASTER_RPCS:
            mi.register(rpc)

    def _master(self) -> str:
        return self.deployment.master_addr

    def register_model(
        self, model: str, layers: list[tuple[str, int]]
    ) -> Generator:
        """Returns the layer -> worker placement chosen by the master."""
        out = yield from self.mi.forward(
            self._master(), RPC_REGISTER,
            {"model": model, "layers": layers}, PID_MASTER,
        )
        if out["ret"] != 0:
            raise FlameStoreError(f"register {model!r}: {out['err']}")
        return out["placement"]

    def write_layer(
        self, model: str, layer: str, placement: dict, data: bytes
    ) -> Generator:
        """Push one layer tensor to its worker and record it."""
        worker = placement.get(layer)
        if worker is None:
            raise FlameStoreError(f"layer {layer!r} not in placement")
        rid = yield from self.bake.create_write_persist(worker, PID_BAKE, data)
        out = yield from self.mi.forward(
            self._master(), RPC_COMMIT_LAYER,
            {"model": model, "layer": layer, "rid": rid}, PID_MASTER,
        )
        if out["ret"] != 0:
            raise FlameStoreError(f"commit layer {layer!r}: {out['err']}")

    def commit_model(self, model: str) -> Generator:
        out = yield from self.mi.forward(
            self._master(), RPC_COMMIT_MODEL, {"model": model}, PID_MASTER
        )
        if out["ret"] != 0:
            raise FlameStoreError(f"commit {model!r}: {out['err']}")

    def checkpoint(self, model: str, tensors: dict[str, bytes]) -> Generator:
        """Convenience: register + write all layers + commit."""
        placement = yield from self.register_model(
            model, [(name, len(data)) for name, data in tensors.items()]
        )
        for name, data in tensors.items():
            yield from self.write_layer(model, name, placement, data)
        yield from self.commit_model(model)
        return placement

    def load_model(self, model: str) -> Generator:
        """Reload every layer of a committed model."""
        out = yield from self.mi.forward(
            self._master(), RPC_GET_MODEL, {"model": model}, PID_MASTER
        )
        if out["ret"] != 0:
            raise FlameStoreError(f"get {model!r}: {out['err']}")
        if not out["committed"]:
            raise FlameStoreError(f"model {model!r} is not committed")
        tensors = {}
        for name, info in out["layers"].items():
            data = yield from self.bake.read(info["worker"], PID_BAKE, info["rid"])
            tensors[name] = data
        return tensors

    def list_models(self) -> Generator:
        out = yield from self.mi.forward(
            self._master(), RPC_LIST_MODELS, {}, PID_MASTER
        )
        return out["models"]
