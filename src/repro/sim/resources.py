"""Kernel-level synchronization and queueing primitives.

These primitives are for *simulator tasks* (e.g. network agents and
execution streams).  User-level threads running inside the simulated
Argobots runtime must use the ABT primitives in :mod:`repro.argobots`
instead, because blocking a ULT must free its execution stream rather than
suspend the kernel task interpreting it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .engine import SimEvent, SimulationError, Simulator, Timeout

__all__ = ["Mutex", "Semaphore", "Store"]


class Mutex:
    """FIFO mutual-exclusion lock for kernel tasks.

    Usage from a task::

        yield from mutex.acquire()
        try:
            ...
        finally:
            mutex.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque[SimEvent] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator:
        if not self._locked:
            self._locked = True
            return
            yield  # pragma: no cover - makes this function a generator
        ev = self.sim.event(f"{self.name}.acquire")
        self._waiters.append(ev)
        yield ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"{self.name}: release of unlocked mutex")
        if self._waiters:
            # Hand the lock directly to the next waiter: it resumes already
            # holding the mutex, so _locked stays True.
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Semaphore:
    """Counting semaphore with FIFO wakeup for kernel tasks."""

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: deque[SimEvent] = deque()

    @property
    def value(self) -> int:
        return self._value

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator:
        if self._value > 0:
            self._value -= 1
            return
            yield  # pragma: no cover - makes this function a generator
        ev = self.sim.event(f"{self.name}.acquire")
        self._waiters.append(ev)
        yield ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Store:
    """Unbounded FIFO item store for kernel tasks.

    ``put`` is synchronous; ``get`` blocks the calling task until an item
    is available.  ``get_nowait`` and ``get_batch_nowait`` support polling
    consumers such as the OFI completion-queue reader.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        if self._items:
            item = self._items.popleft()
            return item
            yield  # pragma: no cover - makes this function a generator
        ev = self.sim.event(f"{self.name}.get")
        self._getters.append(ev)
        item = yield ev
        return item

    def get_nowait(self) -> Optional[Any]:
        if self._items:
            return self._items.popleft()
        return None

    def get_batch_nowait(self, max_items: int) -> list[Any]:
        """Pop up to ``max_items`` items without blocking."""
        if max_items <= 0:
            return []
        n = min(max_items, len(self._items))
        return [self._items.popleft() for _ in range(n)]

    def wait_nonempty(self, timeout: Optional[float] = None) -> Generator:
        """Block until the store holds at least one item (or the timeout
        elapses).  Returns True if items are available.

        Unlike :meth:`get`, this does not consume an item; it is the
        building block for poll-style consumers.
        """
        if self._items:
            return True
            yield  # pragma: no cover - makes this function a generator
        ev = self.sim.event(f"{self.name}.nonempty")

        def _cancel_ok(_=None):
            pass

        # Piggyback on the getter queue: a put() fires the event with the
        # item, which we immediately push back to preserve FIFO contents.
        self._getters.append(ev)
        if timeout is None:
            item = yield ev
            self._items.appendleft(item)
            return True
        from .engine import AnyOf

        idx, value = yield AnyOf([ev, Timeout(timeout)])
        if idx == 0:
            self._items.appendleft(value)
            return True
        # Timed out: withdraw our getter registration if still pending.
        try:
            self._getters.remove(ev)
        except ValueError:
            # A put() raced the timeout at the same instant and fired the
            # event; recover the item.
            if ev.fired:
                self._items.appendleft(ev.value)
                return True
        return False
