"""The unified ``python -m repro`` front door and the store/analysis
command lines."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.__main__ import main as analysis_main
from repro.store import PerfStore, record_bench_suite
from repro.store.__main__ import main as store_main

from .conftest import record_echo_run


@pytest.fixture
def recorded_db(tmp_path):
    db = tmp_path / "perf.db"
    record_echo_run(db, seed=0, name="run-a")
    record_echo_run(db, seed=1, name="run-b")
    return str(db)


class TestUnifiedCli:
    def test_help_lists_commands(self, capsys):
        assert repro_main(["help"]) == 0
        out = capsys.readouterr().out
        for command in ("experiments", "bench", "validate", "analysis",
                        "store"):
            assert command in out

    def test_no_args_is_usage_error(self, capsys):
        assert repro_main([]) == 2

    def test_unknown_command(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_dispatches_to_analysis(self, recorded_db, capsys):
        rc = repro_main(
            ["analysis", "query", "runs", "--store", recorded_db]
        )
        assert rc == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["ok"] and reply["result"]["count"] == 2


class TestAnalysisCli:
    def test_regression_query(self, recorded_db, capsys):
        rc = analysis_main([
            "query", "regression", "--store", recorded_db,
            "--base", "run-a", "--head", "run-b",
        ])
        assert rc == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["ok"]
        rows = reply["result"]["rows"]
        assert rows, "two runs with shared metrics must produce rows"
        for row in rows:
            assert {"metric", "base", "head", "delta", "rel_delta",
                    "ci_lo", "ci_hi", "flagged"} <= set(row)

    def test_output_is_byte_deterministic(self, recorded_db, capsys):
        argv = ["query", "detectors", "--store", recorded_db]
        assert analysis_main(argv) == 0
        first = capsys.readouterr().out
        assert analysis_main(argv) == 0
        assert capsys.readouterr().out == first

    def test_bad_query_exits_nonzero(self, recorded_db, capsys):
        rc = analysis_main([
            "query", "regression", "--store", recorded_db,
            "--base", "ghost", "--head", "run-b",
        ])
        assert rc == 1


class TestStoreCli:
    def test_info(self, recorded_db, capsys):
        assert store_main(["info", "--store", recorded_db]) == 0
        out = capsys.readouterr().out
        assert "run-a" in out and "run-b" in out

    def test_import_bench(self, tmp_path, capsys):
        bench_json = tmp_path / "BENCH_kernel.json"
        bench_json.write_text(json.dumps({
            "suite": "kernel",
            "meta": {"calibration_s": 0.05},
            "results": {
                "spawn": {"median_s": 0.01, "runs_s": [0.01], "units": 10,
                          "unit_name": "ops", "rate_per_s": 1000.0},
            },
        }))
        db = str(tmp_path / "bench.db")
        rc = store_main([
            "import-bench", str(bench_json), "--store", db,
            "--date", "2026-08-08",
        ])
        assert rc == 0
        store = PerfStore(db)
        try:
            assert store.bench_suites() == ["kernel"]
            assert store.bench_results("kernel")["spawn"]["median_s"] == 0.01
        finally:
            store.close()


class TestBenchStoreGate:
    def test_check_reads_db_baseline(self, tmp_path, capsys, monkeypatch):
        """--check against a .db flows through the store bundle."""
        from repro.bench.__main__ import _baseline_for, _load_baseline

        db = str(tmp_path / "bench.db")
        record_bench_suite(db, {
            "suite": "kernel",
            "meta": {"calibration_s": 0.05},
            "results": {
                "spawn": {"median_s": 0.01, "runs_s": [0.01], "units": 10,
                          "unit_name": "ops", "rate_per_s": 1000.0},
            },
        }, date="2026-08-08")
        bundle = _load_baseline(db)
        baseline = _baseline_for(bundle, "kernel")
        assert baseline is not None
        assert baseline["results"]["spawn"]["median_s"] == 0.01
        assert baseline["meta"]["calibration_s"] == 0.05

    def test_load_baseline_falls_back_to_json(self, tmp_path):
        from repro.bench.__main__ import _load_baseline

        path = tmp_path / "b.json"
        path.write_text('{"suite": "kernel", "results": {}}')
        assert _load_baseline(str(path))["suite"] == "kernel"


class TestHistoryDedupe:
    def test_dedupe_replaces_same_machine_rev(self):
        from repro.bench.harness import dedupe_history

        old = [
            {"date": "d1", "machine": "m", "git_rev": "r", "results": {}},
            {"date": "d0", "machine": "other", "git_rev": "r",
             "results": {}},
        ]
        new = {"date": "d2", "machine": "m", "git_rev": "r", "results": {}}
        merged = dedupe_history(old, new)
        assert len(merged) == 2
        assert merged[-1]["date"] == "d2"
        assert merged[0]["machine"] == "other"

    def test_dedupe_keeps_legacy_entries(self):
        from repro.bench.harness import dedupe_history

        legacy = [{"date": "d1", "results": {}}]  # pre-machine format
        new = {"date": "d2", "machine": "m", "git_rev": "r", "results": {}}
        assert len(dedupe_history(legacy, new)) == 2

    def test_history_entry_carries_identity(self):
        from repro.bench.harness import SuiteResult, history_entry

        suite = SuiteResult(suite="kernel", results=[],
                            meta={"calibration_s": 0.05})
        entry = history_entry(suite, "2026-08-08")
        assert entry["machine"]
        assert "git_rev" in entry
        assert entry["calibration_s"] == 0.05
