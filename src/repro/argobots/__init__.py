"""Simulated Argobots: ULTs, pools, execution streams, synchronization.

See DESIGN.md §2 item 2.  The public surface mirrors the parts of
Argobots that Mochi/Margo uses.
"""

from .pool import Pool
from .runtime import AbtRuntime
from .sync import AbtBarrier, AbtMutex, Eventual
from .ult import ULT, AbtEffect, Compute, UltState, WaitEventual, YieldNow
from .xstream import ExecutionStream

__all__ = [
    "AbtBarrier",
    "AbtEffect",
    "AbtMutex",
    "AbtRuntime",
    "Compute",
    "Eventual",
    "ExecutionStream",
    "Pool",
    "ULT",
    "UltState",
    "WaitEventual",
    "YieldNow",
]
