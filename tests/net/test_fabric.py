"""Tests for the fabric timing model and message delivery."""

import pytest

from repro.net import CQKind, Fabric, FabricConfig, Message
from repro.sim import RngRegistry, Simulator


def make_fabric(**cfg):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(**cfg))
    a = fabric.create_endpoint("a", node="n0")
    b = fabric.create_endpoint("b", node="n1")
    return sim, fabric, a, b


def test_message_delivered_after_wire_time():
    sim, fabric, a, b = make_fabric(latency=1e-6, bandwidth=1e9)
    msg = Message(src="a", dst="b", size_bytes=1000, payload="hi")
    t = fabric.send(msg)
    assert t == pytest.approx(1e-6 + 1000 / 1e9)
    sim.run()
    assert b.cq_depth == 1
    entry = b.cq_read(16)[0]
    assert entry.kind is CQKind.RECV
    assert entry.payload.payload == "hi"
    assert entry.enqueued_at == pytest.approx(t)


def test_zero_size_message_takes_latency_only():
    sim, fabric, a, b = make_fabric(latency=2e-6)
    t = fabric.send(Message(src="a", dst="b", size_bytes=0, payload=None))
    assert t == pytest.approx(2e-6)


def test_larger_messages_take_longer():
    sim, fabric, a, b = make_fabric(latency=1e-6, bandwidth=1e9)
    t_small = fabric.wire_time("n0", "n1", 1_000)
    t_big = fabric.wire_time("n0", "n1", 1_000_000)
    assert t_big > t_small
    assert t_big - t_small == pytest.approx(999_000 / 1e9)


def test_intra_node_transfer_is_faster():
    sim = Simulator()
    fabric = Fabric(
        sim,
        FabricConfig(
            latency=2e-6,
            bandwidth=8e9,
            intra_node_latency=0.2e-6,
            intra_node_bandwidth=24e9,
        ),
    )
    fabric.create_endpoint("x", node="n0")
    fabric.create_endpoint("y", node="n0")
    fabric.create_endpoint("z", node="n1")
    assert fabric.wire_time("n0", "n0", 4096) < fabric.wire_time("n0", "n1", 4096)


def test_empty_node_names_never_count_as_same_node():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(latency=1e-6, intra_node_latency=1e-9))
    assert fabric.wire_time("", "", 0) == pytest.approx(1e-6)


def test_local_send_completion_fires_after_injection():
    sim, fabric, a, b = make_fabric(latency=1e-6, bandwidth=1e9)
    fired = []
    fabric.send(
        Message(src="a", dst="b", size_bytes=2000, payload=None),
        on_local_complete=lambda: fired.append(sim.now),
    )
    sim.run()
    assert fired == [pytest.approx(2000 / 1e9)]


def test_duplicate_endpoint_address_rejected():
    sim, fabric, a, b = make_fabric()
    with pytest.raises(ValueError):
        fabric.create_endpoint("a")


def test_unknown_endpoint_rejected():
    sim, fabric, a, b = make_fabric()
    with pytest.raises(KeyError):
        fabric.send(Message(src="a", dst="nope", size_bytes=0, payload=None))


def test_negative_message_size_rejected():
    with pytest.raises(ValueError):
        Message(src="a", dst="b", size_bytes=-1, payload=None)


def test_traffic_accounting():
    sim, fabric, a, b = make_fabric()
    fabric.send(Message(src="a", dst="b", size_bytes=100, payload=None))
    fabric.send(Message(src="b", dst="a", size_bytes=50, payload=None))
    assert fabric.total_messages == 2
    assert fabric.total_bytes == 150


def test_rdma_get_completion_via_cq():
    sim, fabric, a, b = make_fabric(latency=1e-6, bandwidth=1e9)
    t = fabric.rdma_get("b", "a", size_bytes=10_000, payload="bulk-tag")
    assert t == pytest.approx(2e-6 + 10_000 / 1e9)
    sim.run()
    (entry,) = b.cq_read(16)
    assert entry.kind is CQKind.RDMA_COMPLETE
    assert entry.payload == "bulk-tag"


def test_rdma_get_inline_completion_bypasses_cq():
    sim, fabric, a, b = make_fabric()
    fired = []
    fabric.rdma_get("b", "a", size_bytes=100, on_complete=lambda: fired.append(sim.now))
    sim.run()
    assert len(fired) == 1
    assert b.cq_depth == 0


def test_jitter_requires_rng_and_varies_times():
    sim = Simulator()
    rng = RngRegistry(7).stream("net")
    fabric = Fabric(sim, FabricConfig(jitter_sigma=0.2), rng=rng)
    times = {fabric.wire_time("n0", "n1", 0) for _ in range(16)}
    assert len(times) > 1


def test_no_jitter_is_deterministic():
    sim, fabric, a, b = make_fabric(latency=1e-6)
    times = {fabric.wire_time("n0", "n1", 512) for _ in range(16)}
    assert len(times) == 1


def test_config_validation():
    with pytest.raises(ValueError):
        FabricConfig(latency=-1.0)
    with pytest.raises(ValueError):
        FabricConfig(bandwidth=0)
    with pytest.raises(ValueError):
        FabricConfig(jitter_sigma=-0.1)


def test_fifo_delivery_for_same_size_messages():
    sim, fabric, a, b = make_fabric()
    for i in range(5):
        fabric.send(Message(src="a", dst="b", size_bytes=64, payload=i))
    sim.run()
    entries = b.cq_read(16)
    assert [e.payload.payload for e in entries] == [0, 1, 2, 3, 4]
