"""Tests for the HEPnOS navigation API (DataSet / Run / SubRun)."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.hepnos import DataSet, HEPnOSClient, HEPnOSService
from repro.sim import Simulator


def make_world():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    service = HEPnOSService.deploy(
        sim, fabric, n_servers=2, servers_per_node=1,
        n_handler_es=4, n_databases=4,
    )
    mi = MargoInstance(sim, fabric, "cli", "cnode0")
    client = HEPnOSClient(mi, service)
    return sim, mi, client


def run_gen(sim, mi, gen, limit=10.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def test_create_run_and_lookup():
    sim, mi, client = make_world()
    ds = DataSet(client, "NOvA")

    def flow():
        run = yield from ds.create_run(3)
        found = yield from ds.run(3)
        missing = yield from ds.run(99)
        return run, found, missing

    run, found, missing = run_gen(sim, mi, flow())
    assert run.number == 3
    assert found is not None and found.number == 3
    assert missing is None


def test_runs_listing_in_order():
    sim, mi, client = make_world()
    ds = DataSet(client, "DS")

    def flow():
        for n in (5, 1, 3):
            yield from ds.create_run(n)
        runs = yield from ds.runs()
        return [r.number for r in runs]

    assert run_gen(sim, mi, flow()) == [1, 3, 5]


def test_subrun_event_roundtrip():
    sim, mi, client = make_world()
    ds = DataSet(client, "DS")

    def flow():
        run = yield from ds.create_run(1)
        sr = yield from run.create_subrun(2)
        yield from sr.store_event(7, b"payload-7")
        got = yield from sr.event(7)
        missing = yield from sr.event(8)
        return got, missing

    got, missing = run_gen(sim, mi, flow())
    assert got == b"payload-7"
    assert missing is None


def test_subruns_listing_scoped_to_run():
    sim, mi, client = make_world()
    ds = DataSet(client, "DS")

    def flow():
        r1 = yield from ds.create_run(1)
        r2 = yield from ds.create_run(2)
        yield from r1.create_subrun(0)
        yield from r1.create_subrun(4)
        yield from r2.create_subrun(9)
        s1 = yield from r1.subruns()
        s2 = yield from r2.subruns()
        return [s.number for s in s1], [s.number for s in s2]

    s1, s2 = run_gen(sim, mi, flow())
    assert s1 == [0, 4]
    assert s2 == [9]


def test_batch_store_and_event_iteration():
    sim, mi, client = make_world()
    ds = DataSet(client, "DS")
    payloads = [(i, bytes([i]) * 16) for i in range(12)]

    def flow():
        run = yield from ds.create_run(1)
        sr = yield from run.create_subrun(0)
        yield from sr.store_events(payloads)
        events = yield from sr.events()
        return events

    events = run_gen(sim, mi, flow())
    # Markers are excluded; events come back in order with exact content.
    assert events == payloads


def test_events_scoped_per_subrun():
    sim, mi, client = make_world()
    ds = DataSet(client, "DS")

    def flow():
        run = yield from ds.create_run(1)
        a = yield from run.create_subrun(0)
        b = yield from run.create_subrun(1)
        yield from a.store_event(1, b"a1")
        yield from b.store_event(1, b"b1")
        ev_a = yield from a.events()
        ev_b = yield from b.events()
        return ev_a, ev_b

    ev_a, ev_b = run_gen(sim, mi, flow())
    assert ev_a == [(1, b"a1")]
    assert ev_b == [(1, b"b1")]
