"""Schema round-trip: everything a run records comes back intact."""

import sqlite3

import pytest

from repro.store import PerfStore, StoreWriter, record_bench_suite
from repro.store.archive import ArchivedRun
from repro.store.schema import SCHEMA_VERSION, ensure_schema, schema_version
from repro.symbiosys.analysis import profile_summary, trace_summary
from repro.symbiosys.export import series_to_csv

from .conftest import record_echo_run


class TestSchema:
    def test_version_stamped(self, echo_store):
        store, _ = echo_store
        assert schema_version(store.conn) == SCHEMA_VERSION

    def test_ensure_schema_idempotent(self, echo_store):
        store, _ = echo_store
        ensure_schema(store.conn)  # must not raise or duplicate
        assert schema_version(store.conn) == SCHEMA_VERSION

    def test_newer_store_rejected(self, tmp_path):
        db = str(tmp_path / "future.db")
        conn = sqlite3.connect(db)
        ensure_schema(conn)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="newer"):
            PerfStore(db)


class TestRunRow:
    def test_identity(self, echo_store):
        store, world = echo_store
        run = store.run(world.cluster.run_id)
        assert run["name"] == "echo-seed0"
        assert run["kind"] == "cluster"
        assert run["seed"] == 0
        assert run["tags"] == {"workload": "echo", "n_calls": "8"}

    def test_resolve_by_name_and_id(self, echo_store):
        store, world = echo_store
        rid = world.cluster.run_id
        assert store.resolve_run(rid) == rid
        assert store.resolve_run(str(rid)) == rid
        assert store.resolve_run("echo-seed0") == rid
        with pytest.raises(KeyError):
            store.resolve_run("no-such-run")


class TestSeriesRoundTrip:
    def test_every_live_series_stored(self, echo_store):
        store, world = echo_store
        monitor = world.cluster.monitor
        rid = world.cluster.run_id
        live = {
            (ts.name, "|".join(f"{k}={v}" for k, v in ts.labels)):
                list(ts.samples())
            for ts in monitor.store.all_series()
        }
        stored = {
            (name, labels): store.samples(rid, name, labels)
            for name, labels in store.series_keys(rid)
        }
        assert stored == live

    def test_sorted_export_order(self, echo_store):
        store, world = echo_store
        rid = world.cluster.run_id
        keys = store.series_keys(rid)
        assert keys == sorted(keys)
        # Same order as the CSV exporter walks.
        csv_keys = []
        for line in series_to_csv(world.cluster.monitor.store).splitlines()[1:]:
            name, labels = line.split(",")[:2]
            if (name, labels) not in csv_keys:
                csv_keys.append((name, labels))
        assert [list(k) for k in keys] == [list(k) for k in csv_keys]

    def test_pvar_view(self, echo_store):
        store, world = echo_store
        rid = world.cluster.run_id
        pvars = store.pvar_samples(rid)
        assert pvars, "monitored run must expose pvar_* series"
        assert all(name.startswith("pvar_") for name, *_ in pvars)


class TestTraceAndProfileRoundTrip:
    def test_events_restore_losslessly(self, echo_store):
        store, world = echo_store
        archived = ArchivedRun(store, world.cluster.run_id)
        assert archived.all_events() == world.cluster.collector.all_events()

    def test_profiles_match_live_summaries(self, echo_store):
        store, world = echo_store
        archived = ArchivedRun(store, world.cluster.run_id)
        live = world.cluster.collector
        assert (
            profile_summary(archived).render()
            == profile_summary(live).render()
        )
        assert (
            trace_summary(archived).render() == trace_summary(live).render()
        )

    def test_findings_and_slices(self, echo_store):
        store, world = echo_store
        archived = ArchivedRun(store, world.cluster.run_id)
        monitor = world.cluster.monitor
        assert archived.findings == monitor.findings
        assert archived.sched_slices() == list(monitor.sched.slices)


class TestBenchHistory:
    PAYLOAD = {
        "suite": "kernel",
        "meta": {"calibration_s": 0.05},
        "results": {
            "spawn": {"median_s": 0.01, "runs_s": [0.01], "units": 100,
                      "unit_name": "ops", "rate_per_s": 10000.0},
        },
    }

    def test_rerecord_same_machine_rev_is_idempotent(self, tmp_path):
        db = str(tmp_path / "bench.db")
        record_bench_suite(db, self.PAYLOAD, date="2026-08-01")
        record_bench_suite(db, self.PAYLOAD, date="2026-08-02")
        store = PerfStore(db)
        try:
            history = store.bench_history("kernel")
            assert len(history) == 1
            assert history[0]["date"] == "2026-08-02"  # upsert kept latest
            assert len(store.runs(kind="bench")) == 2  # runs still append
        finally:
            store.close()

    def test_distinct_rev_appends(self, tmp_path):
        db = str(tmp_path / "bench.db")
        store = PerfStore(db)
        try:
            with StoreWriter(store) as w:
                w.record_bench_history(
                    "kernel", {"date": "d1", "results": {}},
                    machine="m1", rev="r1",
                )
                w.record_bench_history(
                    "kernel", {"date": "d2", "results": {}},
                    machine="m1", rev="r2",
                )
            assert len(store.bench_history("kernel")) == 2
        finally:
            store.close()

    def test_bench_baseline_bundle_shape(self, tmp_path):
        db = str(tmp_path / "bench.db")
        record_bench_suite(db, self.PAYLOAD, date="2026-08-01")
        store = PerfStore(db)
        try:
            bundle = store.bench_baseline()
        finally:
            store.close()
        assert set(bundle) == {"kernel"}
        assert bundle["kernel"]["meta"]["calibration_s"] == 0.05
        assert bundle["kernel"]["results"]["spawn"]["median_s"] == 0.01


class TestMultiRun:
    def test_two_seeds_two_runs(self, tmp_path):
        db = tmp_path / "multi.db"
        record_echo_run(db, seed=0)
        record_echo_run(db, seed=1)
        store = PerfStore(str(db))
        try:
            runs = store.runs(kind="cluster")
            assert [r["name"] for r in runs] == ["echo-seed0", "echo-seed1"]
            assert [r["seed"] for r in runs] == [0, 1]
        finally:
            store.close()
