"""HEPnOS navigation API: datasets > runs > subruns > events.

Mirrors the object-oriented C++ client API the production service
exposes: a :class:`DataSet` creates and iterates :class:`Run` objects,
runs hold :class:`SubRun` objects, and subruns store/load events.  All
structural markers and event payloads live in SDSKV through the same
``put_packed``/``get``/``list_keyvals`` path the data-loader uses, so
everything written here is really stored and really listable.

All methods that touch the service are generators (they run inside a
client ULT)::

    ds = DataSet(client, "NOvA")
    run = yield from ds.create_run(1)
    sr = yield from run.create_subrun(0)
    yield from sr.store_event(42, payload)
    data = yield from sr.event(42)
"""

from __future__ import annotations

from typing import Generator, Optional

from .hierarchy import event_key, parse_event_key
from .service import HEPnOSClient

__all__ = ["DataSet", "Run", "SubRun"]

_MARKER = b""  # structural keys store an empty payload


def _run_marker(dataset: str, run: int) -> str:
    return event_key(dataset, run, 0, 0) + "#run"


def _subrun_marker(dataset: str, run: int, subrun: int) -> str:
    return event_key(dataset, run, subrun, 0) + "#subrun"


class DataSet:
    """Top-level container, addressed by name."""

    def __init__(self, client: HEPnOSClient, name: str):
        self.client = client
        self.name = name

    def create_run(self, number: int) -> Generator:
        """Create (idempotently) and return a Run."""
        yield from self.client.store_event(
            _run_marker(self.name, number), _MARKER
        )
        return Run(self.client, self.name, number)

    def run(self, number: int) -> Generator:
        """Return the Run if its marker exists, else None."""
        value = yield from self.client.load_event(_run_marker(self.name, number))
        if value is None:
            return None
        return Run(self.client, self.name, number)

    def runs(self) -> Generator:
        """All runs in the dataset, in numeric order."""
        items = yield from self.client.list_events(f"{self.name}%")
        numbers = sorted(
            parse_event_key(key[: -len("#run")]).run
            for key, _ in items
            if key.endswith("#run")
        )
        return [Run(self.client, self.name, n) for n in numbers]


class Run:
    """One run within a dataset."""

    def __init__(self, client: HEPnOSClient, dataset: str, number: int):
        self.client = client
        self.dataset = dataset
        self.number = number

    def create_subrun(self, number: int) -> Generator:
        yield from self.client.store_event(
            _subrun_marker(self.dataset, self.number, number), _MARKER
        )
        return SubRun(self.client, self.dataset, self.number, number)

    def subruns(self) -> Generator:
        items = yield from self.client.list_events(f"{self.dataset}%")
        numbers = sorted(
            parse_event_key(key[: -len("#subrun")]).subrun
            for key, _ in items
            if key.endswith("#subrun")
            and parse_event_key(key[: -len("#subrun")]).run == self.number
        )
        return [
            SubRun(self.client, self.dataset, self.number, n) for n in numbers
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Run({self.dataset!r}, {self.number})"


class SubRun:
    """One subrun: the event container."""

    def __init__(
        self, client: HEPnOSClient, dataset: str, run: int, number: int
    ):
        self.client = client
        self.dataset = dataset
        self.run = run
        self.number = number

    def _key(self, event: int) -> str:
        return event_key(self.dataset, self.run, self.number, event)

    def store_event(self, number: int, payload: bytes) -> Generator:
        yield from self.client.store_event(self._key(number), payload)

    def store_events(self, pairs: list[tuple[int, bytes]]) -> Generator:
        """Batch store through the put_packed path (grouped by database,
        like the data-loader)."""
        kv = [(self._key(n), payload) for n, payload in pairs]
        groups = self.client.group_by_database(kv)
        for db_index, group in sorted(groups.items()):
            yield from self.client.put_packed_to(db_index, group)

    def event(self, number: int) -> Generator:
        value = yield from self.client.load_event(self._key(number))
        return value

    def events(self) -> Generator:
        """All (event number, payload) pairs, in numeric order."""
        prefix = self._key(0)[: -9]  # strip the event-number field
        items = yield from self.client.list_events(prefix)
        out = []
        for key, value in items:
            if "#" in key:
                continue  # structural marker
            parsed = parse_event_key(key)
            out.append((parsed.event, value))
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubRun({self.dataset!r}, run={self.run}, subrun={self.number})"
