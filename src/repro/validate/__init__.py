"""Correctness tooling for the simulated Mochi stack.

Three pillars, all deterministic:

* :mod:`repro.validate.invariants` -- opt-in runtime invariant checkers
  (``Cluster(validate=...)``) that watch a run through the same observer
  seams the telemetry layer uses and report violations with simulated
  time, process, and callpath.
* :mod:`repro.validate.fuzz` -- a seed/workload/fault-plan fuzzer that
  runs every configuration twice to cross-check export-level
  determinism and shrinks failures to a minimal reproducing config.
* :mod:`repro.validate.golden` -- a checked-in corpus of canonical
  service runs with regression-locked artifact digests.

``python -m repro.validate fuzz|golden`` is the command-line entry.

Only the invariant layer is imported eagerly -- :mod:`repro.cluster`
depends on it, and the fuzz/golden modules depend on the cluster in
turn, so they load lazily to keep the import graph acyclic.
"""

from .invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    ValidationConfig,
)

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "ValidationConfig",
]
