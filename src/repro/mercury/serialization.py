"""Serialization cost model and payload size estimation.

Real Mercury spends CPU encoding RPC metadata with a proc-based XDR-like
encoder; the time is roughly affine in the encoded size.  The simulated
(de)serializers charge the calling ULT ``fixed + per_byte * nbytes``
seconds of compute, which is what the ``input_serialization_time`` /
``input_deserialization_time`` / ``output_serialization_time`` handle
PVARs report.

``estimate_size`` gives a deterministic encoded-size estimate for the
plain-Python payloads the services exchange, so callers don't have to
hand-count bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import Replaceable

__all__ = ["SerializationModel", "estimate_size"]


@dataclass(frozen=True, kw_only=True)
class SerializationModel(Replaceable):
    """Affine cost model for encode/decode of RPC metadata."""

    ser_fixed: float = 0.3e-6
    ser_per_byte: float = 0.25e-9
    deser_fixed: float = 0.35e-6
    deser_per_byte: float = 0.3e-9

    def __post_init__(self) -> None:
        for field_name in ("ser_fixed", "ser_per_byte", "deser_fixed", "deser_per_byte"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def ser_time(self, nbytes: int) -> float:
        """CPU time to serialize ``nbytes`` of metadata."""
        return self.ser_fixed + self.ser_per_byte * nbytes

    def deser_time(self, nbytes: int) -> float:
        """CPU time to deserialize ``nbytes`` of metadata."""
        return self.deser_fixed + self.deser_per_byte * nbytes


_OVERHEAD_PER_ITEM = 8  # length/tag prefix, like an XDR 4+4
_NULL_SIZE = 4


def estimate_size(payload: Any) -> int:
    """Deterministic encoded-size estimate (bytes) for an RPC payload.

    Supports the payload shapes used across the services: None, bool,
    int, float, str, bytes, and (possibly nested) list/tuple/dict.
    """
    if payload is None:
        return _NULL_SIZE
    encoded = getattr(type(payload), "__encoded_size__", None)
    if encoded is not None:
        return int(encoded)
    if isinstance(payload, bool):
        return _NULL_SIZE
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, bytes):
        return _OVERHEAD_PER_ITEM + len(payload)
    if isinstance(payload, str):
        return _OVERHEAD_PER_ITEM + len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple)):
        return _OVERHEAD_PER_ITEM + sum(estimate_size(v) for v in payload)
    if isinstance(payload, dict):
        return _OVERHEAD_PER_ITEM + sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items()
        )
    raise TypeError(f"cannot estimate encoded size of {type(payload).__name__}")
