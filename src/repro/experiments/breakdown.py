"""Figures 11-12 revisited through the critical-path engine.

The paper's Fig 11 shows that in the HEPnOS batch-size-1 regime most of
the cumulative RPC time is *unaccounted*: it falls outside every
instrumented t1..t14 sub-interval.  Fig 12 then explains it by looking
at ``num_ofi_events_read`` -- the origin progress loop drains completion
events in large gulps, so requests sit in the completion queue.  The
:mod:`repro.symbiosys.critical` engine turns that narrative into named
numbers: every request's latency decomposes into wait-state categories
that sum *exactly* to its end-to-end latency, so the formerly
unaccounted component shows up as ``progress_starvation`` plus
``ofi_cq_backlog`` instead of a residual.

This harness runs monitored HEPnOS loads in the Fig 11 knob regime
(C4: batch 1024 vs C5: batch 1 at pipeline width 64, plus C6 with the
raised ``OFI_max_events`` cap of Fig 12), decomposes each run, and
emits a machine-checkable report:

* the sum-to-total invariant is asserted for every request,
* the Fig 11 claim is checked (the CQ-side wait share of the batch-1
  regime exceeds the batched regime's),
* per-config category tables are printed byte-deterministically.

``--store`` archives each run (telemetry, traces, breakdowns) into a
performance store; ``--out`` writes one flow-linked Perfetto critical-
path trace per config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Optional, Sequence

from ..symbiosys.critical import CATEGORIES, CriticalReport, analyze_collector
from ..symbiosys.monitor import MonitorConfig
from .configs import TABLE_IV
from .hepnos import PUT_PACKED, run_hepnos_experiment

__all__ = [
    "BreakdownExperimentResult",
    "CQ_WAIT_CATEGORIES",
    "run_breakdown_experiment",
]

#: The categories the paper's "unaccounted" component decomposes into:
#: time a finished or in-flight completion sat waiting for the origin
#: progress loop.
CQ_WAIT_CATEGORIES = ("ofi_cq_backlog", "progress_starvation")

#: Fig 11/12 knob regime: batched baseline, batch-1 storm, batch-1 with
#: the raised OFI event cap.
_DEFAULT_CONFIGS = ("C4", "C5", "C6")


def _pipeline_width(name: str) -> int:
    # Same widths the fig11/fig12 targets use: batch-1 configs push 64
    # concurrent windows, batched configs 32.
    return 64 if TABLE_IV[name].batch_size == 1 else 32


def _cq_share(report: CriticalReport, rpc: str) -> float:
    """CQ-side wait share of one operation's decomposed time."""
    op = report.operation_profiles().get(rpc)
    if op is None or op["total_ps"] == 0:
        return 0.0
    waiting = sum(op["categories"][c] for c in CQ_WAIT_CATEGORIES)
    return waiting / op["total_ps"]


@dataclass
class BreakdownExperimentResult:
    """Per-config critical-path decompositions plus the claim checks."""

    seed: int
    events_per_client: int
    config_names: list[str]
    reports: dict[str, CriticalReport]
    results: dict[str, object] = field(default_factory=dict, repr=False)

    def check_invariants(self) -> None:
        """Raise unless every request in every run sums exactly."""
        for name in self.config_names:
            self.reports[name].check_invariant()

    def cq_shares(self) -> dict[str, float]:
        """Config -> CQ-side wait share of ``sdskv_put_packed``."""
        return {
            name: _cq_share(self.reports[name], PUT_PACKED)
            for name in self.config_names
        }

    def fig11_check(self) -> bool:
        """The paper's Fig 11 finding, machine-checked: the batch-1
        regime (C5) hides more of its latency in CQ-side waits than the
        batched regime (C4)."""
        shares = self.cq_shares()
        if "C4" not in shares or "C5" not in shares:
            return True  # regime not part of this run; nothing to check
        return shares["C5"] > shares["C4"]

    def report(self) -> str:
        """Deterministic plain-text report (byte-identical per seed)."""
        lines = [
            f"critical-path breakdown (seed={self.seed}, "
            f"{self.events_per_client} events/client)",
        ]
        for name in self.config_names:
            rep = self.reports[name]
            cfg = TABLE_IV[name]
            lines.append("")
            lines.append(
                f"== {name}: batch={cfg.batch_size} "
                f"OFI_max_events={cfg.ofi_max_events} "
                f"pipeline={_pipeline_width(name)} =="
            )
            for line in rep.render(top=3).splitlines():
                lines.append(f"  {line}")
        lines.append("")
        lines.append("CQ-side wait share of sdskv_put_packed "
                     "(ofi_cq_backlog + progress_starvation):")
        for name, share in sorted(self.cq_shares().items()):
            lines.append(f"  {name}: {100.0 * share:6.2f}%")
        lines.append(
            "fig11_check (batch-1 C5 waits more on the CQ than batched "
            f"C4): {'PASS' if self.fig11_check() else 'FAIL'}"
        )
        ok = True
        try:
            self.check_invariants()
        except AssertionError:
            ok = False
        lines.append(
            f"sum-to-total invariant: {'PASS' if ok else 'FAIL'} "
            f"({sum(len(r.breakdowns) for r in self.reports.values())} "
            "requests, exact integer-picosecond sums)"
        )
        return "\n".join(lines)

    def write_artifacts(self, out_dir) -> list[str]:
        """One flow-linked Perfetto critical-path trace per config,
        plus the report text."""
        import os

        from ..symbiosys.export import write_text
        from ..symbiosys.perfetto import chrome_trace_json

        os.makedirs(out_dir, exist_ok=True)
        paths = []
        for name in self.config_names:
            result = self.results[name]
            path = os.path.join(out_dir, f"critical-{name}.trace.json")
            write_text(path, chrome_trace_json(
                monitor=result.monitor,
                collector=result.collector,
                critical=self.reports[name],
            ))
            paths.append(path)
        path = os.path.join(out_dir, "breakdown.txt")
        write_text(path, self.report() + "\n")
        paths.append(path)
        return paths


def run_breakdown_experiment(
    *,
    seed: int = 7,
    events_per_client: int = 192,
    configs: Sequence[str] = _DEFAULT_CONFIGS,
    monitor_config: Optional[MonitorConfig] = None,
    store=None,
    out_dir: Optional[str] = None,
) -> BreakdownExperimentResult:
    """Run the Fig 11/12 regime monitored and decompose every request.

    ``store``, if given, archives each config's run (named
    ``breakdown-<config>-seed<seed>``) with stored per-request
    breakdowns and wait-state-annotated findings, so
    ``python -m repro.analysis query breakdown`` serves the same
    numbers later.
    """
    monitor_config = monitor_config or MonitorConfig(interval=50e-6)
    reports: dict[str, CriticalReport] = {}
    results: dict[str, object] = {}
    for name in configs:
        result = run_hepnos_experiment(
            TABLE_IV[name],
            events_per_client=events_per_client,
            pipeline_width=_pipeline_width(name),
            seed=seed,
            monitoring=monitor_config,
        )
        report = analyze_collector(result.collector, result.monitor)
        report.check_invariant()
        reports[name] = report
        results[name] = result
        if store is not None:
            from ..store import record_cluster_run

            # run_hepnos_experiment deploys raw MargoInstances rather
            # than a Cluster; a shim with the same duck type feeds the
            # same store sink.
            shim = SimpleNamespace(
                seed=seed,
                monitor=result.monitor,
                collector=result.collector,
                fault_events=lambda: (),
            )
            record_cluster_run(
                store, shim,
                name=f"breakdown-{name}-seed{seed}",
                tags={
                    "experiment": "breakdown",
                    "config": name,
                    "events_per_client": str(events_per_client),
                },
            )

    out = BreakdownExperimentResult(
        seed=seed,
        events_per_client=events_per_client,
        config_names=list(configs),
        reports=reports,
        results=results,
    )
    if out_dir is not None:
        out.write_artifacts(out_dir)
    return out
