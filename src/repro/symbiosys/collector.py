"""Run-wide consolidation of per-process SYMBIOSYS data.

The paper consolidates profiles and traces "at the end of the execution";
the :class:`SymbiosysCollector` is that consolidation point.  It hands
out per-process instrumentation objects (all sharing one callpath-name
registry) and merges their stores for the analysis scripts.
"""

from __future__ import annotations

from typing import Iterable

from .callpath import CallpathRegistry
from .instrument import SymbiosysInstrumentation
from .profiling import ProfileStore
from .stages import Stage
from .tracing import FaultAnnotation, RetryRecord, SpanIdAllocator, TraceEvent

__all__ = ["SymbiosysCollector"]


class SymbiosysCollector:
    """Factory for per-process instrumentation + global aggregation."""

    def __init__(self, stage: Stage = Stage.FULL):
        self.stage = stage
        self.registry = CallpathRegistry()
        #: One span-id counter per run: ids are unique across this run's
        #: processes and restart at 1 for every collector, so same-seed
        #: runs export identical span ids.
        self.span_ids = SpanIdAllocator()
        self.instruments: list[SymbiosysInstrumentation] = []

    def create_instrumentation(self) -> SymbiosysInstrumentation:
        instr = SymbiosysInstrumentation(
            self.stage, self.registry, span_ids=self.span_ids
        )
        self.instruments.append(instr)
        return instr

    # -- consolidation ------------------------------------------------------

    def merged_origin_profile(self) -> ProfileStore:
        merged = ProfileStore()
        for instr in self.instruments:
            merged.merge(instr.origin_profile)
        return merged

    def merged_target_profile(self) -> ProfileStore:
        merged = ProfileStore()
        for instr in self.instruments:
            merged.merge(instr.target_profile)
        return merged

    def merged_resilience(self) -> dict[str, int]:
        """Run-wide degraded-mode gauges, summed over all processes."""
        merged: dict[str, int] = {}
        for instr in self.instruments:
            for name, value in instr.resilience_counters().items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def resilience_by_process(self) -> dict[str, dict[str, int]]:
        """Per-process degraded-mode gauges, keyed by address."""
        return {
            instr.process: instr.resilience_counters()
            for instr in self.instruments
            if instr.process is not None
        }

    def all_events(self) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for instr in self.instruments:
            if instr.trace is not None:
                events.extend(instr.trace.events)
        return events

    def events_by_process(self) -> dict[str, list[TraceEvent]]:
        out: dict[str, list[TraceEvent]] = {}
        for instr in self.instruments:
            if instr.trace is not None:
                out[instr.trace.process] = list(instr.trace.events)
        return out

    def all_annotations(self) -> list[FaultAnnotation]:
        """Every fault annotation recorded into any process's trace
        buffer, in firing order (stable across same-seed runs)."""
        anns: list[FaultAnnotation] = []
        for instr in self.instruments:
            if instr.trace is not None:
                anns.extend(instr.trace.annotations)
        anns.sort(key=lambda a: (a.time, a.kind, a.detail))
        return anns

    def annotations_by_process(self) -> dict[str, list[FaultAnnotation]]:
        return {
            instr.trace.process: list(instr.trace.annotations)
            for instr in self.instruments
            if instr.trace is not None
        }

    def all_retries(self) -> list[RetryRecord]:
        """Every retry/timeout record from any process's trace buffer,
        in stable time order."""
        recs: list[RetryRecord] = []
        for instr in self.instruments:
            if instr.trace is not None:
                recs.extend(instr.trace.retries)
        recs.sort(
            key=lambda r: (r.time, r.process, r.request_id, r.attempt, r.kind)
        )
        return recs

    def retries_by_process(self) -> dict[str, list[RetryRecord]]:
        return {
            instr.trace.process: list(instr.trace.retries)
            for instr in self.instruments
            if instr.trace is not None
        }

    @property
    def total_trace_events(self) -> int:
        return sum(
            len(i.trace) for i in self.instruments if i.trace is not None
        )

    def processes(self) -> Iterable[str]:
        return [
            i.trace.process for i in self.instruments if i.trace is not None
        ]
