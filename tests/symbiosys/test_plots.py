"""Tests for the terminal plot renderers."""

import pytest

from repro.symbiosys import Stage
from repro.symbiosys.analysis import gantt, scatter, timeseries, trace_summary
from .conftest import drive_requests, make_instrumented_world


def make_trace():
    world = make_instrumented_world(Stage.FULL)
    results = drive_requests(world, 1)
    world.sim.run(until=1.0)
    assert results
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    return req


def test_gantt_renders_all_spans():
    req = make_trace()
    text = gantt(req)
    assert "front_op" in text
    assert text.count("leaf_op") == 2
    assert "us end to end" in text
    # Bars present, with target-execution segments marked.
    assert "=" in text and "#" in text and "|" in text


def test_gantt_children_indented_and_within_width():
    req = make_trace()
    text = gantt(req, width=40)
    lines = text.splitlines()
    leaf_lines = [l for l in lines if "leaf_op" in l]
    assert all(l.startswith("  ") for l in leaf_lines)


def test_gantt_empty_request():
    from repro.symbiosys.analysis import RequestTrace

    empty = RequestTrace(request_id="x", roots=[], spans={})
    assert gantt(empty) == "(no complete spans)"


def test_scatter_plots_points():
    pts = [(0.0, 0.0), (1.0, 10.0), (0.5, 5.0)]
    text = scatter(pts, width=20, height=5, x_label="t", y_label="blocked")
    assert "blocked (max 10)" in text
    assert text.count("*") == 3
    assert "t: 0 .. 1" in text


def test_scatter_empty():
    assert scatter([]) == "(no samples)"


def test_scatter_overlapping_points_collapse():
    pts = [(0.0, 1.0)] * 10
    text = scatter(pts, width=10, height=4)
    assert text.count("*") == 1


def test_timeseries_threshold_line():
    samples = [(i * 0.1, 16) for i in range(10)]
    text = timeseries(samples, threshold=16.0, width=30, height=6,
                      label="ofi reads")
    assert "threshold 16" in text
    assert "-" in text
    assert "*" in text


def test_timeseries_without_threshold():
    samples = [(0.0, 1.0), (1.0, 2.0)]
    text = timeseries(samples, width=10, height=4)
    assert "threshold" not in text


def test_timeseries_empty():
    assert timeseries([]) == "(no samples)"


def test_plots_are_pure_ascii():
    req = make_trace()
    for text in (
        gantt(req),
        scatter([(0, 1), (1, 2)]),
        timeseries([(0, 1), (1, 2)], threshold=1.5),
    ):
        assert text == text.encode("ascii", "replace").decode()
