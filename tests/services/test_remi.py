"""Tests for the REMI migration microservice."""

import pytest

from repro.services.remi import RemiClient, RemiFileset, RemiProvider
from .conftest import make_service_world, run_ult


def make_remi_world():
    world = make_service_world()
    world.target_provider = RemiProvider(world.server, provider_id=1)
    world.source_provider = RemiProvider(world.client, provider_id=1)
    world.remi = RemiClient(world.client, world.source_provider)
    return world


def sample_fileset(name="fs1", n_files=3, size=1024):
    return RemiFileset(
        name=name,
        files={f"file{i}.dat": bytes([i]) * size for i in range(n_files)},
    )


def test_migrate_copies_files():
    world = make_remi_world()
    fs = sample_fileset()
    world.source_provider.add_fileset(fs)

    def body():
        out = yield from world.remi.migrate("svr", 1, fs)
        return out

    out = run_ult(world, body())
    assert out == {"ret": 0, "files": 3}
    migrated = world.target_provider.filesets["fs1"]
    assert migrated.files == fs.files
    assert migrated is not fs  # deep install, not aliasing


def test_migrate_remove_source():
    world = make_remi_world()
    fs = sample_fileset()
    world.source_provider.add_fileset(fs)

    def body():
        out = yield from world.remi.migrate("svr", 1, fs, remove_source=True)
        return out

    run_ult(world, body())
    assert "fs1" not in world.source_provider.filesets
    assert "fs1" in world.target_provider.filesets


def test_migrate_existing_fileset_rejected():
    world = make_remi_world()
    fs = sample_fileset()
    world.target_provider.add_fileset(sample_fileset())

    def body():
        out = yield from world.remi.migrate("svr", 1, fs)
        return out

    out = run_ult(world, body())
    assert out["ret"] == -1


def test_duplicate_local_fileset_rejected():
    world = make_remi_world()
    world.source_provider.add_fileset(sample_fileset())
    with pytest.raises(ValueError):
        world.source_provider.add_fileset(sample_fileset())


def test_migration_time_scales_with_size():
    durations = {}
    for size in (1_000, 2_000_000):
        world = make_remi_world()
        fs = sample_fileset(size=size)
        world.source_provider.add_fileset(fs)

        def body(f=fs):
            t0 = world.sim.now
            yield from world.remi.migrate("svr", 1, f)
            return world.sim.now - t0

        durations[size] = run_ult(world, body(), until=10.0)
    assert durations[2_000_000] > 2 * durations[1_000]


def test_fileset_total_bytes():
    fs = sample_fileset(n_files=2, size=100)
    assert fs.total_bytes == 200
