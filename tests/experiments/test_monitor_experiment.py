"""The monitor experiment target: online telemetry under injected
faults, artifact export, and the overhead study's monitoring arm."""

import json
import os

import pytest

from repro.experiments import TABLE_IV, run_monitor_experiment, run_overhead_study
from repro.experiments.__main__ import main
from repro.experiments.hepnos import run_hepnos_experiment
from repro.symbiosys.monitor import MonitorConfig

SMALL = TABLE_IV["C2"].scaled(
    name="small", total_clients=4, clients_per_node=2, total_servers=2,
    servers_per_node=1, threads=4, databases=8,
)

#: CI-smoke shape -- still spans the default plan's 0.8 ms restart fault.
SMOKE = dict(n_records=600, batch_size=50)


@pytest.fixture(scope="module")
def smoke_result():
    return run_monitor_experiment(seed=0, **SMOKE)


def test_monitor_experiment_produces_telemetry(smoke_result):
    r = smoke_result
    assert r.batches_ok > 0
    assert r.n_series > 0 and r.n_samples > 0
    assert r.n_sched_slices > 0 and r.sampler_ticks > 0
    report = r.report()
    assert "artifact digests" in report
    assert f"seed={r.seed}" in report


def test_monitor_experiment_detects_injected_faults(smoke_result):
    # The restart fault (server down 0.8-1.2 ms) starves the progress
    # loop; the retry storm around it trips the timeout-burst detector.
    fired = smoke_result.detectors_fired()
    assert "progress_starvation" in fired
    assert "forward_timeout_burst" in fired
    assert any("process down" in f.message for f in smoke_result.findings)


def test_monitor_experiment_perfetto_has_all_families(smoke_result):
    doc = json.loads(smoke_result.perfetto_json)
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"ult", "ult_block", "rpc", "fault"} <= cats
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants  # >= 1 fault instant event under the fault plan
    assert all(e["name"].startswith("fault:") for e in instants)


def test_monitor_experiment_deterministic():
    a = run_monitor_experiment(seed=5, **SMOKE)
    b = run_monitor_experiment(seed=5, **SMOKE)
    assert a.report() == b.report()
    assert a.prometheus_text == b.prometheus_text
    assert a.series_csv == b.series_csv
    assert a.perfetto_json == b.perfetto_json
    assert a.findings_text == b.findings_text
    # Different seed, different telemetry.
    c = run_monitor_experiment(seed=6, **SMOKE)
    assert c.digests() != a.digests()


def test_monitor_experiment_writes_artifacts(tmp_path, smoke_result):
    paths = smoke_result.write_artifacts(tmp_path)
    names = sorted(os.path.basename(p) for p in paths)
    assert names == [
        "findings.txt", "metrics.prom", "series.csv", "timeline.perfetto.json",
    ]
    for path in paths:
        assert os.path.getsize(path) > 0
    json.loads((tmp_path / "timeline.perfetto.json").read_text())


def test_monitor_cli_smoke(tmp_path, capsys):
    out = tmp_path / "artifacts"
    assert main(["monitor", "--smoke", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "Monitored campaign" in text
    assert "anomalies" in text
    assert (out / "timeline.perfetto.json").exists()


def test_hepnos_experiment_monitoring_kwarg():
    result = run_hepnos_experiment(
        SMALL, events_per_client=64, monitoring=MonitorConfig(interval=100e-6)
    )
    assert result.monitor is not None
    assert result.monitor.sampler.ticks > 0
    # Every server and client attached.
    assert len(dict(result.monitor.iter_processes())) == 4 + 2


def test_overhead_study_monitoring_arm():
    study = run_overhead_study(
        config=SMALL,
        repetitions=1,
        events_per_client=64,
        monitoring=MonitorConfig(interval=100e-6),
    )
    rows = study.rows()
    assert len(rows) == 5
    assert rows[-1]["stage"] == "Full + monitor"
    # Acceptance criterion: monitoring adds <= 5% simulated-time overhead
    # (0% by construction -- the sampler is a pure observer).
    assert study.monitoring_sim_overhead() <= 0.05


def test_overhead_study_without_monitoring_unchanged():
    study = run_overhead_study(
        config=SMALL, repetitions=1, events_per_client=64
    )
    assert study.monitored is None
    assert len(study.rows()) == 4
    with pytest.raises(ValueError):
        study.monitoring_sim_overhead()
