"""Tests for the three analysis scripts and the Zipkin adapter."""

import json

import pytest

from repro.sim import LocalClock
from repro.symbiosys import Stage, push
from repro.symbiosys.analysis import (
    blocked_ult_samples,
    estimate_clock_offsets,
    ofi_events_series,
    profile_summary,
    stitch_traces,
    system_summary,
    trace_summary,
)
from repro.symbiosys.zipkin import request_to_zipkin, to_zipkin_json
from .conftest import drive_requests, make_instrumented_world


def run_world(stage=Stage.FULL, n_requests=3, **kw):
    world = make_instrumented_world(stage, **kw)
    results = drive_requests(world, n_requests)
    world.sim.run(until=1.0)
    assert len(results) == n_requests
    return world


# ------------------------------------------------------------ profile summary


def test_profile_summary_ranks_by_cumulative_latency():
    world = run_world(n_requests=4)
    summary = profile_summary(world.collector)
    assert len(summary.rows) == 2
    # The root callpath subsumes the nested ones, so it dominates.
    assert summary.rows[0].name == "front_op"
    assert summary.rows[1].name == "front_op -> leaf_op"
    assert (
        summary.rows[0].cumulative_latency > summary.rows[1].cumulative_latency
    )


def test_profile_summary_counts_and_entities():
    n = 4
    world = run_world(n_requests=n)
    summary = profile_summary(world.collector)
    root = summary.row_for("front_op")
    nested = summary.row_for("front_op -> leaf_op")
    assert root.call_count == n
    assert nested.call_count == 2 * n
    assert root.origin_counts == {"cli": n}
    assert root.target_counts == {"front": n}
    assert nested.origin_counts == {"front": 2 * n}
    assert nested.target_counts == {"back": 2 * n}


def test_profile_summary_breakdown_fractions():
    world = run_world(n_requests=3)
    summary = profile_summary(world.collector)
    nested = summary.row_for("front_op -> leaf_op")
    # Execution dominates the leaf RPC (200us of compute per call).
    assert nested.fraction("target_execution_time") > 0.5
    assert 0 <= nested.fraction("input_deserialization_time") < 0.2


def test_profile_summary_unaccounted_non_trivial():
    world = run_world(n_requests=3)
    summary = profile_summary(world.collector)
    nested = summary.row_for("front_op -> leaf_op")
    # Wire time and progress delays are never directly instrumented.
    assert nested.unaccounted_time > 0
    assert nested.unaccounted_time < nested.cumulative_latency


def test_profile_summary_render_mentions_paths_and_percentages():
    world = run_world(n_requests=2)
    text = profile_summary(world.collector).render()
    assert "front_op -> leaf_op" in text
    assert "%" in text
    assert "(unaccounted)" in text


def test_profile_summary_latency_distribution():
    world = run_world(n_requests=6)
    summary = profile_summary(world.collector)
    row = summary.row_for("front_op")
    assert row.latency_stats.count == 6
    p0 = row.latency_percentile(0)
    p50 = row.latency_percentile(50)
    p100 = row.latency_percentile(100)
    assert 0 < p0 <= p50 <= p100
    assert p100 >= row.mean_latency >= p0


def test_profile_summary_row_for_missing_raises():
    world = run_world(n_requests=1)
    summary = profile_summary(world.collector)
    with pytest.raises(KeyError):
        summary.row_for("nope")


# ------------------------------------------------------------ trace summary


def test_stitch_reconstructs_request_trees():
    world = run_world(n_requests=2)
    summary = trace_summary(world.collector)
    assert len(summary.requests) == 2
    for req in summary.requests.values():
        assert len(req.roots) == 1
        root = req.roots[0]
        assert root.rpc_name == "front_op"
        assert len(root.children) == 2
        assert all(c.rpc_name == "leaf_op" for c in root.children)


def test_discrete_calls_listing():
    world = run_world(n_requests=1)
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    assert req.discrete_calls() == ["leaf_op", "leaf_op"]


def test_spans_complete_with_ordered_timestamps():
    world = run_world(n_requests=1)
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    for span in req.roots[0].walk():
        assert span.complete
        assert span.t1 <= span.t5 <= span.t8 <= span.t14


def test_structure_signature_groups_identical_requests():
    world = run_world(n_requests=3)
    summary = trace_summary(world.collector)
    counts = summary.structure_counts()
    assert len(counts) == 1
    assert list(counts.values()) == [3]


def test_end_to_end_latency_positive():
    world = run_world(n_requests=2)
    summary = trace_summary(world.collector)
    for req in summary.requests.values():
        assert req.end_to_end_latency > 400e-6


def test_clock_offset_estimation_recovers_skew():
    offsets_in = {"front": 0.05, "back": -0.02}
    world = make_instrumented_world(
        Stage.FULL,
        clocks={k: LocalClock(offset=v) for k, v in offsets_in.items()},
    )
    results = drive_requests(world, 5)
    world.sim.run(until=1.0)
    assert len(results) == 5
    events = world.collector.all_events()
    est = estimate_clock_offsets(events)
    # The anchor process is arbitrary; relative offsets are what matters
    # (symmetric network => the NTP-style estimate recovers them).
    assert est["front"] - est["cli"] == pytest.approx(0.05, abs=2e-3)
    assert est["back"] - est["cli"] == pytest.approx(-0.02, abs=2e-3)


def test_skew_correction_restores_span_ordering():
    world = make_instrumented_world(
        Stage.FULL, clocks={"back": LocalClock(offset=-10.0)}
    )
    results = drive_requests(world, 2)
    world.sim.run(until=1.0)
    assert len(results) == 2
    summary = trace_summary(world.collector)
    for req in summary.requests.values():
        for span in req.roots[0].walk():
            # Without correction the back-process timestamps would sit 10s
            # before the client's.
            assert span.t1 <= span.t5 <= span.t8 <= span.t14


def test_trace_summary_render():
    world = run_world(n_requests=2)
    text = trace_summary(world.collector).render()
    assert "requests: 2" in text


def test_slowest_ranking():
    world = run_world(n_requests=4)
    summary = trace_summary(world.collector)
    slowest = summary.slowest(2)
    assert len(slowest) == 2
    assert (
        slowest[0].end_to_end_latency >= slowest[1].end_to_end_latency
    )


# ------------------------------------------------------------ figure extractors


def test_blocked_ult_samples_extracted():
    world = run_world(n_requests=3)
    samples = blocked_ult_samples(world.collector.all_events())
    # One sample per handler start: 3 front + 6 leaf.
    assert len(samples) == 9
    ts = [s[0] for s in samples]
    assert ts == sorted(ts)
    only_back = blocked_ult_samples(world.collector.all_events(), "back")
    assert len(only_back) == 6
    assert all(p == "back" for _, _, p in only_back)


def test_ofi_events_series_extracted():
    world = run_world(Stage.FULL, n_requests=3)
    series = ofi_events_series(world.collector.all_events(), "cli")
    assert len(series) == 3  # one ORIGIN_COMPLETE per front_op on cli
    assert all(v >= 1 for _, v in series)


def test_ofi_events_series_empty_at_stage2():
    world = run_world(Stage.STAGE2, n_requests=2)
    series = ofi_events_series(world.collector.all_events())
    assert series == []


# ------------------------------------------------------------ system summary


def test_system_summary_per_process():
    world = run_world(n_requests=3)
    summary = system_summary(world.collector.all_events())
    assert set(summary.per_process) == {"cli", "front", "back"}
    for stats in summary.per_process.values():
        assert stats.samples > 0
        assert 0.0 <= stats.mean_cpu <= 1.0


def test_system_summary_saturation_filter():
    world = run_world(n_requests=3)
    summary = system_summary(world.collector.all_events())
    assert summary.saturated_processes(10**9) == []
    everyone = summary.saturated_processes(0)
    assert "front" in everyone


def test_system_summary_render():
    world = run_world(n_requests=1)
    text = system_summary(world.collector.all_events()).render()
    assert "max_blocked" in text
    assert "cli" in text


# ------------------------------------------------------------ zipkin export


def test_zipkin_spans_reference_parents():
    world = run_world(n_requests=1)
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    spans = request_to_zipkin(req)
    assert len(spans) == 3
    by_id = {s["id"]: s for s in spans}
    roots = [s for s in spans if "parentId" not in s]
    children = [s for s in spans if "parentId" in s]
    assert len(roots) == 1
    assert len(children) == 2
    for child in children:
        assert child["parentId"] == roots[0]["id"]
        assert child["traceId"] == roots[0]["traceId"]


def test_zipkin_span_fields():
    world = run_world(n_requests=1)
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    root = [s for s in request_to_zipkin(req) if "parentId" not in s][0]
    assert root["name"] == "front_op"
    assert root["localEndpoint"] == {"serviceName": "cli"}
    assert root["remoteEndpoint"] == {"serviceName": "front"}
    assert root["duration"] >= 1
    assert root["tags"]["callpath"].startswith("0x")
    annotations = {a["value"] for a in root["annotations"]}
    assert "target ULT start (t5)" in annotations


def test_zipkin_json_is_valid_and_loadable():
    world = run_world(n_requests=2)
    summary = trace_summary(world.collector)
    doc = to_zipkin_json(summary.requests.values())
    spans = json.loads(doc)
    assert len(spans) == 6
    for span in spans:
        assert {"traceId", "id", "name", "timestamp"} <= set(span)


def test_zipkin_pvar_tags_fused():
    world = run_world(Stage.FULL, n_requests=1)
    summary = trace_summary(world.collector)
    (req,) = summary.requests.values()
    spans = request_to_zipkin(req)
    tagged = [s for s in spans if any(k.startswith("pvar.") for k in s["tags"])]
    assert tagged, "expected PVAR tags on at least one span"
