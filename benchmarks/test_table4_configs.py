"""Table IV: the HEPnOS service configurations.

Regenerates the configuration table and verifies each row deploys to a
working service with the stated shape (server/ES/database counts).
"""

from repro.experiments import TABLE_IV, ascii_table, table_iv_rows
from repro.net import Fabric, FabricConfig
from repro.services.hepnos import HEPnOSService
from repro.sim import Simulator
from .conftest import run_once

PAPER_ROWS = {
    "C1": (32, 16, 4, 2, 1024, 5, 32, False, 16),
    "C2": (32, 16, 4, 2, 1024, 20, 32, False, 16),
    "C3": (32, 16, 4, 2, 1024, 20, 8, False, 16),
    "C4": (2, 1, 4, 2, 1024, 16, 8, False, 16),
    "C5": (2, 1, 4, 2, 1, 16, 8, False, 16),
    "C6": (2, 1, 4, 2, 1, 16, 8, False, 64),
    "C7": (2, 1, 4, 2, 1, 16, 8, True, 64),
}


def _deploy_all():
    shapes = {}
    for name, cfg in TABLE_IV.items():
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig())
        service = HEPnOSService.deploy(
            sim,
            fabric,
            n_servers=cfg.total_servers,
            servers_per_node=cfg.servers_per_node,
            n_handler_es=cfg.threads,
            n_databases=cfg.databases_per_server,
        )
        shapes[name] = {
            "servers": len(service.servers),
            "nodes": len({s.node for s in service.servers}),
            "total_dbs": service.total_databases,
            "handler_es": len(service.servers[0].rt.xstreams) - 1,
        }
    return shapes


def test_table4_configs(benchmark, report):
    shapes = run_once(benchmark, _deploy_all)
    report.append("Table IV: HEPnOS Service Configurations")
    report.append(ascii_table(table_iv_rows()))

    for name, cfg in TABLE_IV.items():
        paper = PAPER_ROWS[name]
        assert (
            cfg.total_clients,
            cfg.clients_per_node,
            cfg.total_servers,
            cfg.servers_per_node,
            cfg.batch_size,
            cfg.threads,
            cfg.databases,
            cfg.client_progress_thread,
            cfg.ofi_max_events,
        ) == paper, f"{name} deviates from the paper's Table IV"
        shape = shapes[name]
        assert shape["servers"] == cfg.total_servers
        assert shape["nodes"] == cfg.server_nodes
        assert shape["total_dbs"] == cfg.databases
        assert shape["handler_es"] == cfg.threads
