"""Archived runs behind the live-object interfaces.

The offline analysis scripts (``repro.symbiosys.analysis``) consume a
live :class:`~repro.symbiosys.collector.SymbiosysCollector`; the
exporters consume a live monitor.  :class:`ArchivedRun` rebuilds the
same duck-typed surface from a store row set, so

    trace_summary(ArchivedRun(store, run))
    system_summary(ArchivedRun(store, run).all_events())
    profile_summary(ArchivedRun(store, run))

run unchanged over a run recorded weeks ago -- one code path for live
objects and archived data, per the ISSUE's redesign goal.
"""

from __future__ import annotations

import json
from typing import Union

from ..symbiosys.monitor import Finding, SchedSlice
from ..symbiosys.profiling import IntervalStats, ProfileKey, ProfileStore
from ..symbiosys.tracing import EventKind, RetryRecord, TraceEvent

__all__ = ["ArchivedCallpathNames", "ArchivedRun"]


class ArchivedCallpathNames:
    """The decoding half of a CallpathRegistry, rebuilt from the stored
    component-name map (same rendering as the live registry)."""

    def __init__(self, names: dict[int, str]):
        self._names = dict(names)
        self.collisions: dict[int, set] = {}

    def name_of(self, component: int) -> str:
        return self._names.get(component, f"<unknown:{component:#06x}>")

    def decode(self, code: int) -> str:
        from ..symbiosys.callpath import components

        parts = components(code)
        if not parts:
            return "<root>"
        return " -> ".join(self.name_of(c) for c in parts)

    def known_names(self) -> list[str]:
        return sorted(set(self._names.values()))


class ArchivedRun:
    """One stored run, presented like a live collector/monitor.

    Duck-typed surface: ``all_events()``, ``all_retries()``,
    ``merged_origin_profile()``, ``merged_target_profile()``,
    ``registry`` (decode-capable), ``findings``, ``sched_slices()``,
    ``total_trace_events``.  The critical-path engine's
    :func:`~repro.symbiosys.critical.analyze_run` accepts it directly.
    """

    def __init__(self, store, run: Union[int, str]):
        self.store = store
        self.run_id = store.resolve_run(run)
        self.info = store.run(self.run_id)
        self._events = None
        self._registry = None

    # -- collector surface --------------------------------------------------

    @property
    def registry(self) -> ArchivedCallpathNames:
        if self._registry is None:
            self._registry = ArchivedCallpathNames(
                self.store.callpath_names(self.run_id)
            )
        return self._registry

    def all_events(self) -> list[TraceEvent]:
        """The run's trace events, losslessly restored (cached)."""
        if self._events is None:
            self._events = [
                TraceEvent(
                    kind=EventKind(r["kind"]),
                    request_id=r["request_id"],
                    order=r["ord"],
                    lamport=r["lamport"],
                    process=r["process"],
                    local_ts=r["local_ts"],
                    true_ts=r["true_ts"],
                    rpc_name=r["rpc_name"],
                    callpath=r["callpath"],
                    span_id=r["span_id"],
                    parent_span_id=r["parent_span_id"],
                    provider_id=r["provider_id"],
                    data=json.loads(r["data"]),
                    pvars=json.loads(r["pvars"]),
                    sysstats=json.loads(r["sysstats"]),
                )
                for r in self.store.trace_event_rows(self.run_id)
            ]
        return self._events

    @property
    def total_trace_events(self) -> int:
        return len(self.all_events())

    def _profile(self, side: str) -> ProfileStore:
        out = ProfileStore()
        for row in self.store.profile_rows(self.run_id, side):
            key = ProfileKey(
                callpath=row["callpath"],
                origin=row["origin"],
                target=row["target"],
            )
            stats = IntervalStats.from_summary(
                count=row["count"],
                total=row["total"],
                minimum=row["min"],
                maximum=row["max"],
                samples=row["reservoir"],
            )
            out._data.setdefault(key, {})[row["interval"]] = stats
        return out

    def merged_origin_profile(self) -> ProfileStore:
        return self._profile("origin")

    def merged_target_profile(self) -> ProfileStore:
        return self._profile("target")

    def all_retries(self) -> list[RetryRecord]:
        """The run's retry/timeout records, restored in the collector's
        merged order (empty for pre-v2 stores)."""
        return [
            RetryRecord(
                process=r["process"],
                time=r["time"],
                request_id=r["request_id"],
                rpc_name=r["rpc_name"],
                attempt=r["attempt"],
                delay=r["delay"],
                target=r["target"],
                kind=r["kind"],
            )
            for r in self.store.retry_records(self.run_id)
        ]

    def retries_by_process(self) -> dict[str, list[RetryRecord]]:
        out: dict[str, list[RetryRecord]] = {}
        for rec in self.all_retries():
            out.setdefault(rec.process, []).append(rec)
        return out

    def breakdown_rows(self) -> list[dict]:
        """Stored critical-path decompositions (see
        ``PerfStore.breakdown_rows``)."""
        return self.store.breakdown_rows(self.run_id)

    def merged_resilience(self) -> dict:
        """Run-wide degraded-mode gauges, as recorded at shutdown
        (empty for runs archived without a collector)."""
        return dict(self.info["extra"].get("resilience", {}))

    # -- monitor surface ----------------------------------------------------

    @property
    def findings(self) -> list[Finding]:
        return [
            Finding(
                time=f["time"],
                detector=f["detector"],
                process=f["process"],
                message=f["message"],
                value=f["value"],
                wait_state=f.get("wait_state", ""),
            )
            for f in self.store.findings(self.run_id)
        ]

    def sched_slices(self) -> list[SchedSlice]:
        return [
            SchedSlice(
                process=r["process"],
                es=r["es"],
                ult=r["ult"],
                kind=r["kind"],
                start=r["start"],
                end=r["end"],
                reason=r["reason"],
            )
            for r in self.store.sched_slice_rows(self.run_id)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArchivedRun(run_id={self.run_id}, "
            f"name={self.info['name']!r}, kind={self.info['kind']!r})"
        )
