"""Tests for the serialization cost model and size estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.mercury import SerializationModel, estimate_size


def test_ser_time_affine():
    m = SerializationModel(ser_fixed=1e-6, ser_per_byte=1e-9)
    assert m.ser_time(0) == pytest.approx(1e-6)
    assert m.ser_time(1000) == pytest.approx(1e-6 + 1e-6)


def test_deser_time_affine():
    m = SerializationModel(deser_fixed=2e-6, deser_per_byte=2e-9)
    assert m.deser_time(500) == pytest.approx(2e-6 + 1e-6)


def test_negative_costs_rejected():
    with pytest.raises(ValueError):
        SerializationModel(ser_fixed=-1.0)
    with pytest.raises(ValueError):
        SerializationModel(deser_per_byte=-1e-9)


def test_estimate_size_primitives():
    assert estimate_size(None) == 4
    assert estimate_size(True) == 4
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size(b"abc") == 8 + 3
    assert estimate_size("abc") == 8 + 3


def test_estimate_size_unicode_uses_utf8():
    assert estimate_size("é") == 8 + 2


def test_estimate_size_containers():
    assert estimate_size([1, 2]) == 8 + 16
    assert estimate_size((1, 2)) == 8 + 16
    assert estimate_size({"k": 1}) == 8 + (8 + 1) + 8


def test_estimate_size_nested():
    payload = {"rows": [{"id": 1, "val": "x"}] * 3}
    assert estimate_size(payload) > 3 * estimate_size({"id": 1, "val": "x"})


def test_estimate_size_unsupported_type():
    with pytest.raises(TypeError):
        estimate_size(object())


@given(st.binary(max_size=4096))
def test_bytes_size_monotone_in_length(data):
    assert estimate_size(data) == 8 + len(data)


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(2**62), 2**62),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.binary(max_size=20),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=5), children, max_size=5),
        ),
        max_leaves=20,
    )
)
def test_estimate_size_always_positive_and_deterministic(payload):
    s1 = estimate_size(payload)
    s2 = estimate_size(payload)
    assert s1 == s2
    assert s1 >= 4


@given(st.lists(st.integers(0, 100), max_size=30))
def test_list_size_is_sum_of_parts_plus_overhead(items):
    assert estimate_size(items) == 8 + sum(estimate_size(i) for i in items)


def test_bulk_ref_counts_as_descriptor_only():
    """A BulkRef rides as a 24-byte descriptor regardless of payload --
    the split between RPC metadata and bulk data."""
    from repro.mercury import BulkRef

    big = BulkRef(b"x" * 1_000_000)
    assert big.nbytes == 8 + 1_000_000
    assert estimate_size(big) == 24
    assert estimate_size({"bulk": big}) == 8 + (8 + 4) + 24


def test_bulk_ref_explicit_size_overrides_estimate():
    from repro.mercury import BulkRef

    ref = BulkRef(b"abc", 999)
    assert ref.nbytes == 999
    assert BulkRef(b"abc", 0).nbytes == 0
