"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AnyOf,
    SimEvent,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_call_at_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.call_at(2.0, seen.append, "b")
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_timestamp_fifo_order():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.call_at(1.0, seen.append, tag)
    sim.run()
    assert seen == list(range(10))


def test_call_after_is_relative():
    sim = Simulator()
    out = []
    sim.call_at(5.0, lambda: sim.call_after(2.5, lambda: out.append(sim.now)))
    sim.run()
    assert out == [7.5]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_run_until_stops_at_bound():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, 1)
    sim.call_at(10.0, seen.append, 10)
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    # Remaining events still fire on a later run.
    sim.run()
    assert seen == [1, 10]


def test_run_until_advances_time_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_max_events_bounds_processing():
    sim = Simulator()
    seen = []
    for i in range(100):
        sim.call_at(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_stop_simulation_halts_run():
    sim = Simulator()
    seen = []

    def boom():
        raise StopSimulation()

    sim.call_at(1.0, seen.append, 1)
    sim.call_at(2.0, boom)
    sim.call_at(3.0, seen.append, 3)
    sim.run()
    assert seen == [1]
    assert sim.now == 2.0


def test_task_timeout_sequence():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Timeout(1.5)
        trace.append(("mid", sim.now))
        yield Timeout(0.5)
        trace.append(("end", sim.now))
        return "done"

    task = sim.spawn(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]
    assert task.finished
    assert task.done.value == "done"


def test_timeout_rejects_negative_delay():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_event_wait_and_succeed():
    sim = Simulator()
    ev = sim.event("gate")
    results = []

    def waiter(tag):
        value = yield ev
        results.append((tag, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.call_at(3.0, ev.succeed, 99)
    sim.run()
    assert results == [("a", 99, 3.0), ("b", 99, 3.0)]


def test_wait_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    out = []

    def waiter():
        out.append((yield ev))

    sim.spawn(waiter())
    sim.run()
    assert out == ["early"]


def test_event_fires_only_once():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_fire_raises():
    sim = Simulator()
    ev = sim.event("pending")
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_propagates_into_task():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.call_at(1.0, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_task_unhandled_exception_aborts_by_default():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("die")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="die"):
        sim.run()


def test_task_error_recorded_when_swallowed():
    sim = Simulator(swallow_task_errors=True)

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("die")

    task = sim.spawn(bad())
    sim.run()
    assert task.finished
    assert isinstance(task.done._exc, RuntimeError)


def test_task_done_callback_receives_error():
    sim = Simulator()
    failures = []

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("die")

    task = sim.spawn(bad())
    task.done.add_callback(lambda ev: failures.append(ev._exc))
    sim.run()
    assert len(failures) == 1
    assert isinstance(failures[0], RuntimeError)


def test_yield_from_subroutine_composes():
    sim = Simulator()
    log = []

    def inner(n):
        yield Timeout(n)
        return n * 2

    def outer():
        a = yield from inner(1)
        b = yield from inner(2)
        log.append((a, b, sim.now))

    sim.spawn(outer())
    sim.run()
    assert log == [(2, 4, 3.0)]


def test_yield_non_waitable_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_anyof_timeout_wins():
    sim = Simulator()
    ev = sim.event()
    out = []

    def waiter():
        idx, value = yield AnyOf([ev, Timeout(2.0, "to")])
        out.append((idx, value, sim.now))

    sim.spawn(waiter())
    sim.call_at(5.0, ev.succeed, "late")
    sim.run()
    assert out == [(1, "to", 2.0)]


def test_anyof_event_wins():
    sim = Simulator()
    ev = sim.event()
    out = []

    def waiter():
        idx, value = yield AnyOf([ev, Timeout(10.0)])
        out.append((idx, value, sim.now))

    sim.spawn(waiter())
    sim.call_at(1.0, ev.succeed, "fast")
    sim.run()
    assert out == [(0, "fast", 1.0)]


def test_anyof_requires_branches():
    with pytest.raises(ValueError):
        AnyOf([])


def test_spawn_runs_at_current_instant_in_order():
    sim = Simulator()
    seen = []

    def proc(tag):
        seen.append((tag, sim.now))
        yield Timeout(0.0)

    sim.call_at(4.0, lambda: (sim.spawn(proc("x")), sim.spawn(proc("y"))))
    sim.run()
    assert seen == [("x", 4.0), ("y", 4.0)]


def test_task_done_event_can_be_awaited():
    sim = Simulator()
    out = []

    def child():
        yield Timeout(3.0)
        return "payload"

    def parent():
        t = sim.spawn(child())
        value = yield t.done
        out.append((value, sim.now))

    sim.spawn(parent())
    sim.run()
    assert out == [("payload", 3.0)]


def test_run_not_reentrant():
    sim = Simulator()

    def evil():
        sim.run()

    sim.call_at(0.0, evil)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_on_predicate():
    sim = Simulator()
    hits = []
    for i in range(100):
        sim.call_at(float(i), hits.append, i)
    ok = sim.run_until(lambda: len(hits) >= 10, limit=1000.0)
    assert ok
    # Event-driven: stops exactly at the event that flipped the predicate,
    # with no idle tail simulated past it.
    assert len(hits) == 10
    assert sim.now == 9.0


def test_run_until_respects_limit():
    sim = Simulator()
    ok = sim.run_until(lambda: False, limit=5.0)
    assert not ok
    assert sim.now == 5.0


def test_run_until_does_not_run_past_firing_instant():
    # Regression: the old fixed-step implementation kept processing
    # events up to the next step boundary after the predicate flipped.
    sim = Simulator()
    hits = []
    sim.call_at(1.0, hits.append, "a")
    sim.call_at(1.5, hits.append, "b")  # must NOT be processed
    ok = sim.run_until(lambda: "a" in hits, limit=10.0)
    assert ok
    assert hits == ["a"]
    assert sim.now == 1.0
    assert sim.pending_events == 1


def test_run_until_immediate_predicate():
    sim = Simulator()
    assert sim.run_until(lambda: True, limit=100.0)
    assert sim.now == 0.0


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_at(7.0, lambda: None)
    assert sim.peek() == 7.0
