#!/usr/bin/env python3
"""In-situ autotuning: the paper's future work, running.

Starts the HEPnOS data-loader in the pathological C5 configuration
(batch size 1, shared progress ES, OFI_max_events 16) with a
:class:`~repro.symbiosys.PolicyEngine` attached to every client.  The
engine watches live SYMBIOSYS metrics and applies the paper's §V-C
remedies automatically:

* ``RaiseOfiMaxEvents``  -- fires when ``num_ofi_events_read`` pegs at
  the cap (the Figure 12 C5 signature),
* ``DedicateProgressES`` -- fires if the OFI queue stays deep afterwards
  (the Figure 11 C6->C7 step).

Run:  python examples/autotuning.py        (~15 s)
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)
from repro.symbiosys import DedicateProgressES, PolicyEngine, RaiseOfiMaxEvents

EVENTS = 2048


def make_engine(mi):
    return PolicyEngine(
        mi,
        [
            RaiseOfiMaxEvents(window=4, cooldown=0.5e-3, max_cap=64),
            DedicateProgressES(window=16, depth_threshold=8, cooldown=2e-3),
        ],
        period=0.1e-3,
    )


def main() -> None:
    print("running C5 (static, pathological) ...")
    plain = run_hepnos_experiment(
        TABLE_IV["C5"], events_per_client=EVENTS, pipeline_width=64
    )
    print("running C5 + policy engine (autotuned) ...")
    tuned = run_hepnos_experiment(
        TABLE_IV["C5"],
        events_per_client=EVENTS,
        pipeline_width=64,
        client_policy_factory=make_engine,
    )
    print("running C7 (hand-tuned reference) ...\n")
    hand = run_hepnos_experiment(
        TABLE_IV["C7"], events_per_client=EVENTS, pipeline_width=64
    )

    rows = [
        {
            "setup": name,
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "unaccounted share": f"{100 * r.unaccounted_fraction:.1f}%",
            "makespan": format_seconds(r.makespan),
        }
        for name, r in (
            ("C5  (static)", plain),
            ("C5 + policy engine", tuned),
            ("C7  (hand-tuned)", hand),
        )
    ]
    print(ascii_table(rows))

    print("\npolicy-engine audit log (first client):")
    for action in tuned.policy_engines[0].actions:
        print(f"  t={action.time * 1e3:6.2f} ms  {action.policy}: "
              f"{action.description}")

    gap_static = plain.cumulative_origin_time - hand.cumulative_origin_time
    gap_tuned = tuned.cumulative_origin_time - hand.cumulative_origin_time
    print(f"\ngap to the hand-tuned configuration closed: "
          f"{100 * (1 - gap_tuned / gap_static):.1f}%")


if __name__ == "__main__":
    main()
