"""Tests for ULT synchronization primitives: Eventual, AbtMutex, AbtBarrier."""

import pytest

from repro.argobots import AbtRuntime, Compute
from repro.sim import Simulator


def make_runtime(n_es=2, ctx_cost=0.0):
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=ctx_cost)
    pool = rt.create_pool()
    for _ in range(n_es):
        rt.create_xstream(pool)
    return sim, rt, pool


# ---------------------------------------------------------------- Eventual


def test_eventual_wait_and_signal():
    sim, rt, pool = make_runtime()
    out = []
    ev = rt.eventual("gate")

    def real_waiter():
        value = yield from ev.wait()
        out.append((value, sim.now))

    def signaler():
        yield Compute(2.0)
        ev.signal("payload")

    rt.spawn(real_waiter(), pool)
    rt.spawn(signaler(), pool)
    sim.run(until=10.0)
    assert out == [("payload", 2.0)]


def test_eventual_wait_after_signal_is_immediate():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    ev.signal(7)
    out = []

    def waiter():
        value = yield from ev.wait()
        out.append((value, sim.now))

    rt.spawn(waiter(), pool)
    sim.run(until=10.0)
    assert out == [(7, 0.0)]


def test_eventual_double_signal_raises():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    ev.signal(1)
    with pytest.raises(RuntimeError):
        ev.signal(2)


def test_eventual_wakes_all_waiters():
    sim, rt, pool = make_runtime(n_es=4)
    ev = rt.eventual()
    out = []

    def waiter(tag):
        value = yield from ev.wait()
        out.append((tag, value))

    for tag in range(3):
        rt.spawn(waiter(tag), pool)

    def signaler():
        yield Compute(1.0)
        ev.signal("x")

    rt.spawn(signaler(), pool)
    sim.run(until=10.0)
    assert sorted(out) == [(0, "x"), (1, "x"), (2, "x")]


def test_eventual_wait_with_timeout_expires():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    out = []

    def waiter():
        ok, value = yield from ev.wait(timeout=2.0)
        out.append((ok, value, sim.now))

    rt.spawn(waiter(), pool)
    sim.run(until=10.0)
    assert out == [(False, None, 2.0)]
    assert rt.num_blocked == 0


def test_eventual_wait_with_timeout_signaled_first():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    out = []

    def waiter():
        ok, value = yield from ev.wait(timeout=5.0)
        out.append((ok, value, sim.now))

    def signaler():
        yield Compute(1.0)
        ev.signal("fast")

    rt.spawn(waiter(), pool)
    rt.spawn(signaler(), pool)
    sim.run(until=10.0)
    assert out == [(True, "fast", 1.0)]


def test_eventual_timeout_then_late_signal_is_safe():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    out = []

    def waiter():
        ok, _ = yield from ev.wait(timeout=1.0)
        out.append(ok)
        yield Compute(5.0)
        out.append(ev.is_set)

    def late_signaler():
        yield Compute(3.0)
        ev.signal("late")

    rt.spawn(waiter(), pool)
    rt.spawn(late_signaler(), pool)
    sim.run(until=20.0)
    assert out == [False, True]


def test_eventual_wait_on_set_with_timeout_returns_ok():
    sim, rt, pool = make_runtime()
    ev = rt.eventual()
    ev.signal("already")
    out = []

    def waiter():
        ok, value = yield from ev.wait(timeout=9.0)
        out.append((ok, value))

    rt.spawn(waiter(), pool)
    sim.run(until=10.0)
    assert out == [(True, "already")]


# ---------------------------------------------------------------- AbtMutex


def test_mutex_serializes_ults():
    sim, rt, pool = make_runtime(n_es=4)
    m = rt.mutex("db")
    spans = []

    def writer(tag):
        yield from m.lock()
        start = sim.now
        yield Compute(1.0)
        m.unlock()
        spans.append((start, sim.now, tag))

    for tag in range(4):
        rt.spawn(writer(tag), pool)
    sim.run(until=20.0)
    spans.sort()
    # Strictly serialized despite 4 ESs.
    for (s1, e1, _), (s2, _, _) in zip(spans, spans[1:]):
        assert s2 >= e1
    assert sim.now >= 4.0


def test_mutex_fifo_handoff():
    sim, rt, pool = make_runtime(n_es=4)
    m = rt.mutex()
    order = []

    def holder():
        yield from m.lock()
        yield Compute(5.0)
        m.unlock()

    def waiter(tag, delay):
        yield Compute(delay)
        yield from m.lock()
        order.append(tag)
        m.unlock()

    rt.spawn(holder(), pool)
    rt.spawn(waiter("second", 2.0), pool)
    rt.spawn(waiter("first", 1.0), pool)
    sim.run(until=30.0)
    assert order == ["first", "second"]


def test_mutex_contention_watermark():
    sim, rt, pool = make_runtime(n_es=4)
    m = rt.mutex()

    def writer():
        yield from m.lock()
        yield Compute(1.0)
        m.unlock()

    for _ in range(4):
        rt.spawn(writer(), pool)
    sim.run(until=20.0)
    assert m.contention_high_watermark == 3


def test_mutex_unlock_unlocked_raises():
    sim, rt, pool = make_runtime()
    m = rt.mutex()
    with pytest.raises(RuntimeError):
        m.unlock()


def test_mutex_blocked_ults_counted():
    """ULTs queued on a mutex show up in num_blocked -- the Fig 10 signal."""
    sim, rt, pool = make_runtime(n_es=4)
    m = rt.mutex()
    samples = []

    def writer():
        yield from m.lock()
        yield Compute(1.0)
        m.unlock()

    def sampler():
        yield Compute(0.5)
        samples.append(rt.num_blocked)

    for _ in range(4):
        rt.spawn(writer(), pool)
    # sampler needs its own ES slot; give it a dedicated pool+ES
    sp = rt.create_pool("sampler")
    rt.create_xstream(sp)
    rt.spawn(sampler(), sp)
    sim.run(until=20.0)
    assert samples == [3]


# ---------------------------------------------------------------- AbtBarrier


def test_barrier_releases_all_at_once():
    sim, rt, pool = make_runtime(n_es=4)
    bar = rt.barrier(3)
    out = []

    def party(tag, delay):
        yield Compute(delay)
        yield from bar.wait()
        out.append((tag, sim.now))

    rt.spawn(party("a", 1.0), pool)
    rt.spawn(party("b", 2.0), pool)
    rt.spawn(party("c", 3.0), pool)
    sim.run(until=20.0)
    assert [t for _, t in out] == [3.0, 3.0, 3.0]


def test_barrier_is_reusable():
    sim, rt, pool = make_runtime(n_es=2)
    bar = rt.barrier(2)
    gens = []

    def party():
        g1 = yield from bar.wait()
        yield Compute(1.0)
        g2 = yield from bar.wait()
        gens.append((g1, g2))

    rt.spawn(party(), pool)
    rt.spawn(party(), pool)
    sim.run(until=20.0)
    assert gens == [(1, 2), (1, 2)]


def test_barrier_validates_parties():
    sim, rt, pool = make_runtime()
    with pytest.raises(ValueError):
        rt.barrier(0)
