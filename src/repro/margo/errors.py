"""Margo-level RPC error types."""

from __future__ import annotations

__all__ = ["MargoError", "RemoteRpcError", "MargoTimeoutError"]


class MargoError(Exception):
    """Base class for Margo RPC failures."""


class RemoteRpcError(MargoError):
    """The remote handler raised; the error travelled back in the
    response payload."""

    def __init__(self, rpc_name: str, target: str, detail: str):
        super().__init__(f"{rpc_name} on {target!r} failed: {detail}")
        self.rpc_name = rpc_name
        self.target = target
        self.detail = detail


class MargoTimeoutError(MargoError):
    """A forward did not complete within the requested timeout; the
    handle was cancelled and any late response will be dropped."""

    def __init__(self, rpc_name: str, target: str, timeout: float, handle=None):
        super().__init__(
            f"{rpc_name} on {target!r} timed out after {timeout:g}s"
        )
        self.rpc_name = rpc_name
        self.target = target
        self.timeout = timeout
        #: The cancelled HGHandle of the failed attempt (for the retry
        #: loop's instrumentation hooks); not part of the message.
        self.handle = handle
