"""End-to-end tests of the sharded KV service: routing, migration,
failover, revival handoff, and the churn audit."""

import pytest

from repro.cluster import Cluster
from repro.faults import CrashFault, FaultPlan, RestartFault
from repro.margo import MargoError, RetryPolicy
from repro.shard import ShardedKVService, run_churn_audit
from repro.shard.placement import shard_of
from repro.symbiosys import Stage


def _retry() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=4,
        timeout=0.5e-3,
        backoff=0.1e-3,
        backoff_factor=2.0,
        max_backoff=1e-3,
    )


def _deploy(cluster, n_servers=8, **kw):
    service = ShardedKVService.deploy(cluster, n_servers, **kw)
    client = cluster.process("cli", "nodeC")
    router = service.make_router(client)
    return service, client, router


def test_put_get_roundtrip_across_shards():
    with Cluster(seed=7, stage=Stage.FULL) as cluster:
        service, client, router = _deploy(cluster)
        done = {}

        def body():
            for i in range(40):
                ret = yield from router.put(f"key{i}", f"val{i}")
                assert ret == 0
            for i in range(40):
                value = yield from router.get(f"key{i}")
                assert value == f"val{i}"
            missing = yield from router.get("absent")
            assert missing is None
            done["at"] = cluster.sim.now

        client.client_ult(body(), name="load")
        assert cluster.run_until(lambda: "at" in done, limit=1.0)
        assert service.total_items() == 40
        spread = [
            a for a in service.servers if service.providers[a].total_items > 0
        ]
        assert len(spread) > 1  # data actually sharded, not piled up
        assert router.routing_failures == 0
    assert cluster.leaked_events == 0


def test_placement_routes_match_the_map():
    with Cluster(seed=3, stage=Stage.FULL) as cluster:
        service, client, router = _deploy(cluster, n_servers=6)
        # BAKE regions and HEPnOS event keys ride the same placement.
        assert router.region_owner("region-a") in service.servers
        owner = router.dataset_owner("hepnos.dataset", 3, 14)
        key = router.event_key("hepnos.dataset", 3, 14)
        assert owner == router.owner_of(key)
        assert router.shard_of(key) == shard_of(key, service.n_shards)


def test_rebalance_moves_data_and_conserves_bytes():
    with Cluster(seed=5, stage=Stage.FULL) as cluster:
        service, client, router = _deploy(cluster)
        done = {}

        def load():
            for i in range(30):
                yield from router.put(f"key{i}", "v" * 32)
            done["loaded"] = True

        client.client_ult(load(), name="load")
        assert cluster.run_until(lambda: "loaded" in done, limit=1.0)
        bytes_before = service.bytes_stored()

        # Pick a stored shard and a different live destination.
        manager = service.manager
        shard = next(
            s for s in range(service.n_shards)
            if (owner := manager.current_owner(s)) is not None
            and service.providers[owner].shards[s].bytes_stored > 0
        )
        src = manager.current_owner(shard)
        dst = next(a for a in service.servers if a != src)
        moved_keys = len(service.providers[src].shards[shard])
        assert manager.request_rebalance(shard, dst)
        cluster.run(until=cluster.sim.now + 2e-3)

        assert manager.current_owner(shard) == dst
        done.clear()
        (record,) = manager.completed("rebalance")
        assert record.shard == shard and record.src == src and record.dst == dst
        assert record.n_keys == moved_keys
        assert record.nbytes > 0
        assert service.bytes_stored() == bytes_before  # conserved

        # The router's map is unchanged (no membership change), so the
        # next request for that shard goes to the old owner and must be
        # redirected via the tombstone.
        def reread():
            value = yield from router.get(
                next(k for k in (f"key{i}" for i in range(30))
                     if shard_of(k, service.n_shards) == shard)
            )
            assert value == "v" * 32
            done["reread"] = True

        client.client_ult(reread(), name="reread")
        assert cluster.run_until(lambda: "reread" in done, limit=1.0)
        assert router.redirects_followed >= 1
        # Migration PVARs moved on both ends.
        src_pvars = service.providers[src].mi.hg.pvars
        dst_pvars = service.providers[dst].mi.hg.pvars
        assert src_pvars.raw_value("shard_migrations_out") == 1
        assert src_pvars.raw_value("shard_migration_bytes_out") == record.nbytes
        assert dst_pvars.raw_value("shard_migrations_in") == 1
        assert dst_pvars.raw_value("shard_migration_bytes_in") == record.nbytes


def test_node_death_triggers_view_change_and_failover():
    victim = "kv002"
    plan = FaultPlan(
        name="kill-one",
        process_faults=[CrashFault(addr=victim, at=1.0e-3)],
    )
    with Cluster(
        seed=11, stage=Stage.FULL, fault_plan=plan, retry=_retry()
    ) as cluster:
        service, client, router = _deploy(cluster)
        epoch0 = service.group.epoch
        expected, acked = {}, set()
        outcome = {"ok": 0, "failed": 0}
        done = {}

        def body():
            for i in range(30):
                key, value = f"pre{i}", f"v{i}"
                expected[key] = value
                try:
                    yield from router.put(key, value)
                    acked.add(key)
                    outcome["ok"] += 1
                except (MargoError, LookupError):
                    outcome["failed"] += 1
            # Sleep past the crash, detection, and propagation.
            yield from client.rt.sleep(
                max(1e-9, 1.6e-3 - cluster.sim.now)
            )
            for i in range(30):
                key, value = f"post{i}", f"w{i}"
                expected[key] = value
                try:
                    yield from router.put(key, value)
                    acked.add(key)
                    outcome["ok"] += 1
                except (MargoError, LookupError):
                    outcome["failed"] += 1
            done["at"] = cluster.sim.now

        client.client_ult(body(), name="churn-load")
        assert cluster.run_until(lambda: "at" in done, limit=1.0)
        cluster.run(until=cluster.sim.now + 2e-3)  # quiesce migrations

        # The death produced an epoch-numbered view change...
        assert service.group.epoch > epoch0
        assert victim not in service.group
        assert any(
            kind == "death" and addr == victim
            for (_, kind, addr, _) in service.membership.events
        )
        # ...failover migrations re-homed the victim's shards...
        failovers = service.manager.completed("failover")
        assert failovers
        assert {r.src for r in failovers} == {victim}
        for shard in range(service.n_shards):
            assert service.shard_owner(shard) is not None
        # ...every server replica converged to the authoritative view...
        for addr in service.servers:
            if addr == victim:
                continue
            assert service.providers[addr].replica.epoch == service.group.epoch
        # ...and nothing was silently dropped.
        report = run_churn_audit(service, expected, acked)
        assert report.ok, report.as_dict()
        assert report.issued == 60
        assert outcome["ok"] == len(acked)


def test_revived_node_rejoins_and_receives_handoffs():
    victim = "kv001"
    plan = FaultPlan(
        name="bounce",
        process_faults=[
            RestartFault(addr=victim, at=0.8e-3, downtime=0.6e-3, warmup=0.0)
        ],
    )
    with Cluster(
        seed=13, stage=Stage.FULL, fault_plan=plan, retry=_retry()
    ) as cluster:
        service, client, router = _deploy(cluster)
        expected, acked = {}, set()
        done = {}

        def body():
            for i in range(40):
                key, value = f"key{i}", f"v{i}" * 8
                expected[key] = value
                try:
                    yield from router.put(key, value)
                    acked.add(key)
                except (MargoError, LookupError):
                    pass
            yield from client.rt.sleep(max(1e-9, 2.5e-3 - cluster.sim.now))
            done["at"] = cluster.sim.now

        client.client_ult(body(), name="bounce-load")
        assert cluster.run_until(lambda: "at" in done, limit=1.0)
        cluster.run(until=cluster.sim.now + 2e-3)

        # The victim died and came back: two view changes.
        events = [(kind, addr) for (_, kind, addr, _) in service.membership.events]
        assert ("death", victim) in events
        assert ("revive", victim) in events
        assert victim in service.group
        # Its re-entry pulled shards back via live handoffs.
        handoffs = service.manager.completed("handoff")
        assert handoffs
        assert {r.dst for r in handoffs} == {victim}
        for record in handoffs:
            assert record.ok and record.end is not None
        # Data conservation modulo failover losses.
        report = run_churn_audit(service, expected, acked)
        assert report.ok, report.as_dict()


def test_router_fails_loudly_when_no_owner_exists():
    with Cluster(seed=21, stage=Stage.FULL) as cluster:
        service, client, router = _deploy(cluster, n_servers=2)
        # Fence a shard to a destination that never installs it.
        shard = 0
        owner = service.manager.current_owner(shard)
        service.providers[owner].fence_shard(shard, None)
        key = next(
            f"k{i}" for i in range(10_000)
            if shard_of(f"k{i}", service.n_shards) == shard
        )
        failed = {}

        def body():
            with pytest.raises(LookupError):
                yield from router.put(key, "v")
            failed["done"] = True

        client.client_ult(body(), name="lost")
        assert cluster.run_until(lambda: "done" in failed, limit=1.0)
        assert router.routing_failures == 1
