"""Property-based checks for the Mercury cost models.

Uses hypothesis when the container has it; otherwise the same
properties run over seeded random samples, so the suite never gains a
hard dependency.
"""

import functools
import random

import pytest

from repro.mercury import HGConfig
from repro.mercury.bulk import BulkRef
from repro.mercury.serialization import SerializationModel, estimate_size

from .conftest import call_rpc, make_world, serve_echo

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 60
MAX_SIZE = 1 << 22


def forall_sizes(n_args=1):
    """Run the test for many payload sizes: hypothesis-driven when
    available, seeded uniform samples otherwise."""

    def deco(f):
        if HAVE_HYPOTHESIS:
            strat = [st.integers(min_value=0, max_value=MAX_SIZE)] * n_args
            return settings(max_examples=N_EXAMPLES, deadline=None)(
                given(*strat)(f)
            )

        @functools.wraps(f)
        def runner():
            rng = random.Random(0xC0575)
            for _ in range(N_EXAMPLES):
                f(*(rng.randrange(0, MAX_SIZE + 1) for _ in range(n_args)))

        return runner

    return deco


@forall_sizes()
def test_costs_are_non_negative(nbytes):
    model = SerializationModel()
    assert model.ser_time(nbytes) >= 0.0
    assert model.deser_time(nbytes) >= 0.0
    assert model.ser_time(0) == model.ser_fixed
    assert model.deser_time(0) == model.deser_fixed


@forall_sizes(n_args=2)
def test_costs_are_monotone_in_payload_size(a, b):
    lo, hi = sorted((a, b))
    model = SerializationModel()
    assert model.ser_time(lo) <= model.ser_time(hi)
    assert model.deser_time(lo) <= model.deser_time(hi)


@forall_sizes()
def test_estimate_size_scales_with_content(nbytes):
    nbytes = nbytes % (1 << 12)  # keep allocations small
    assert estimate_size(bytes(nbytes)) == 8 + nbytes
    assert estimate_size([0] * (nbytes % 64)) == 8 + 8 * (nbytes % 64)


def test_estimate_size_base_cases():
    assert estimate_size(None) == 4
    assert estimate_size(True) == 4
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size("ab") == 8 + 2
    assert estimate_size({"k": "v"}) == 8 + (8 + 1) + (8 + 1)
    with pytest.raises(TypeError):
        estimate_size(object())


@forall_sizes()
def test_bulk_ref_encodes_as_fixed_descriptor(nbytes):
    ref = BulkRef(bytes(nbytes % (1 << 12)))
    # The wire cost of shipping the *reference* never depends on the
    # region size -- only the descriptor travels.
    assert estimate_size(ref) == 24
    assert ref.nbytes == 8 + (nbytes % (1 << 12))
    assert BulkRef(b"", nbytes=nbytes).nbytes == nbytes


def test_eager_to_rdma_switch_happens_exactly_once():
    """Sweeping the payload through the eager threshold flips the
    transport exactly once, at ``input_size > eager_size``."""
    eager_size = 256
    sim, sides = make_world(hg_config=HGConfig(eager_size=eager_size))
    serve_echo(sides["svr"])

    # bytes payloads encode as 8 + len: the documented switch point is
    # len == eager_size - 8.
    lengths = range(eager_size - 12, eager_size - 3)
    overflowed = []
    sess = sides["cli"].hg.pvar_session_init()
    for length in lengths:
        before = sess.read_by_name("eager_overflow_count")
        results = []
        call_rpc(sides["cli"], "svr", "echo", bytes(length), results)
        assert sim.run_until(lambda: results, limit=1.0)
        overflowed.append(sess.read_by_name("eager_overflow_count") - before)

    expected = [1 if 8 + length > eager_size else 0 for length in lengths]
    assert overflowed == expected
    # Exactly one False->True transition across the sweep, at the boundary.
    transitions = [
        (a, b) for a, b in zip(overflowed, overflowed[1:]) if a != b
    ]
    assert transitions == [(0, 1)]
    assert overflowed.index(1) == lengths.index(eager_size - 8 + 1)
