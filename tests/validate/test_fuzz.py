"""Fuzz-runner machinery: config round-trips, shrinking, repro files,
and a tiny real sweep."""

import numpy as np
import pytest

from repro.faults import (
    CrashFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
)
from repro.validate.fuzz import (
    FailureReport,
    FuzzConfig,
    fuzz_sweep,
    load_repro,
    random_fault_plan,
    shrink,
    write_repro,
)


def _plan():
    return FaultPlan(
        name="mixed",
        wire_rules=[
            DropRule(dst="echo-svr", kind="rpc_request", probability=0.1),
            DuplicateRule(dst="echo-svr", probability=0.05),
            DelayRule(dst="echo-svr", extra=80e-6, probability=0.2),
        ],
        process_faults=[CrashFault(addr="echo-svr", at=0.5e-3)],
    )


def test_fuzz_config_json_round_trip():
    config = FuzzConfig(seed=7, workload="sonata", scale=5, plan=_plan())
    assert FuzzConfig.from_dict(config.to_dict()) == config
    # and the dict itself is pure JSON (no float('inf'), no objects)
    import json

    assert json.loads(json.dumps(config.to_dict())) == config.to_dict()


def test_random_fault_plans_survive_serialization():
    rng = np.random.default_rng(42)
    n_plans = 0
    for _ in range(50):
        plan = random_fault_plan(rng, "echo")
        if plan is None:
            continue
        n_plans += 1
        assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert n_plans > 10  # the generator is not degenerate


def test_shrink_isolates_the_culprit_rule():
    """Failure depends on one DropRule only: shrinking must strip the
    other three rules and collapse the scale to 1."""
    config = FuzzConfig(seed=3, scale=8, plan=_plan())

    def is_failing(cfg):
        return cfg.plan is not None and any(
            isinstance(rule, DropRule) for rule in cfg.plan.wire_rules
        )

    shrunk = shrink(config, is_failing)
    assert shrunk.scale == 1
    assert [type(r) for r in shrunk.plan.wire_rules] == [DropRule]
    assert not shrunk.plan.process_faults
    assert is_failing(shrunk)


def test_shrink_respects_eval_budget():
    config = FuzzConfig(seed=3, scale=64, plan=_plan())
    evals = []

    def is_failing(cfg):
        evals.append(cfg)
        return True  # everything "fails": worst case for the search

    shrunk = shrink(config, is_failing, max_evals=5)
    assert len(evals) <= 5
    # even under the tight budget the result is a genuine simplification
    assert shrunk != config


def test_shrink_of_plan_free_failure_only_scales_down():
    config = FuzzConfig(seed=1, scale=16, plan=None)
    shrunk = shrink(config, lambda cfg: True)
    assert shrunk.plan is None
    assert shrunk.scale == 1


def test_repro_file_round_trip_prefers_shrunk(tmp_path):
    config = FuzzConfig(seed=9, scale=8, plan=_plan())
    shrunk = FuzzConfig(seed=9, scale=1, plan=None)
    path = tmp_path / "repro.json"
    write_repro(
        FailureReport(config=config, kind="hang", detail="x", shrunk=shrunk),
        str(path),
    )
    assert load_repro(str(path)) == shrunk
    # without a shrunk config the original is replayed
    write_repro(
        FailureReport(config=config, kind="hang", detail="x"), str(path)
    )
    assert load_repro(str(path)) == config


def test_load_repro_rejects_non_repro_files(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"something": "else"}')
    with pytest.raises(ValueError, match="not a fuzz repro file"):
        load_repro(str(path))


def test_small_sweep_is_clean():
    result = fuzz_sweep(
        seeds=[0], workloads=("echo",), presets=("fast",), fault_fraction=0.0
    )
    assert result.ok
    assert result.configs_run == 1


def test_sweep_shrinks_and_writes_repro_on_failure(tmp_path, monkeypatch):
    """Force one config to fail: the sweep must shrink it and leave a
    replayable repro file behind."""
    import repro.validate.fuzz as fuzz_mod

    def fake_check(config, time_limit=5.0):
        return "invariant: injected for test" if config.seed == 0 else None

    monkeypatch.setattr(fuzz_mod, "check_config", fake_check)
    repro = tmp_path / "repro.json"
    result = fuzz_mod.fuzz_sweep(
        seeds=[0],
        workloads=("echo",),
        presets=("fast",),
        fault_fraction=1.0,
        repro_path=str(repro),
    )
    assert not result.ok
    (failure,) = result.failures
    assert failure.kind == "invariant"
    assert failure.shrunk is not None
    assert failure.shrunk.scale == 1
    assert repro.exists()
    assert load_repro(str(repro)) == failure.shrunk
