"""The kernel/macro benchmark bodies run correctly at tiny scales."""

from repro.bench.kernel import (
    bench_anyof,
    bench_event_churn,
    bench_fast_lane,
    bench_rpc_round_trip,
    bench_spawn_resume,
)


def test_event_churn_counts_events():
    units, name = bench_event_churn(50)
    # Up to three in-flight chain ticks land after the target is hit.
    assert 50 <= units <= 53
    assert name == "events"


def test_fast_lane_counts_events():
    assert bench_fast_lane(50) == (50, "events")


def test_spawn_resume_counts_resumes():
    assert bench_spawn_resume(4, 5) == (20, "resumes")


def test_anyof_counts_waits():
    assert bench_anyof(10) == (10, "waits")


def test_rpc_round_trip_completes():
    assert bench_rpc_round_trip(5) == (5, "rpcs")
