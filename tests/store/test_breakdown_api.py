"""Critical-path queries over archived runs: byte-determinism of the
``breakdown``/``critical_path``/``blame`` replies, the stored-vs-
recomputed equivalence, and the v1 -> v2 schema migration."""

import sqlite3

from repro.analysis import AnalysisService, Query, encode_reply
from repro.store import PerfStore
from repro.store.archive import ArchivedRun
from repro.symbiosys.critical import WAIT_CATEGORIES, analyze_run

from ..conftest import make_echo_cluster, run_client_calls
from .conftest import record_echo_run

_OPS = (
    ("breakdown", {"run": "1"}),
    ("critical_path", {"run": "1", "top": 5}),
    ("blame", {"run": "1"}),
)


def query_bytes(db_path, ops=_OPS):
    service = AnalysisService(str(db_path))
    try:
        out = {}
        for op, params in ops:
            reply = service.execute(Query(op, dict(params)))
            assert reply.ok, f"{op}: {reply.error}"
            out[op] = encode_reply(reply)
        return out
    finally:
        service.store.close()


class TestByteDeterminism:
    def test_replies_identical_across_store_rebuilds(self, tmp_path):
        """The golden acceptance check: rebuild the same-seed run into
        two fresh stores; every critical-path reply is byte-identical."""
        replies = []
        for trial in range(2):
            db = tmp_path / f"perf{trial}.db"
            record_echo_run(db, seed=3, n_calls=10)
            replies.append(query_bytes(db))
        for op in replies[0]:
            assert replies[0][op] == replies[1][op], \
                f"{op} reply not byte-identical across rebuilds"

    def test_reply_stable_across_repeat_queries(self, tmp_path):
        db = tmp_path / "perf.db"
        record_echo_run(db, seed=3, n_calls=10)
        assert query_bytes(db) == query_bytes(db)


class TestStoredVsRecomputed:
    def test_engine_fallback_matches_stored_rows(self, tmp_path):
        """Deleting the v2 ``breakdowns`` rows forces the ops back
        through the engine over archived trace events; the replies must
        not change (same engine, same inputs)."""
        db = tmp_path / "perf.db"
        record_echo_run(db, seed=3, n_calls=10)
        stored = query_bytes(db)
        conn = sqlite3.connect(str(db))
        conn.execute("DELETE FROM breakdowns")
        conn.commit()
        conn.close()
        assert query_bytes(db) == stored

    def test_archived_run_feeds_the_engine(self, echo_store):
        store, world = echo_store
        run = ArchivedRun(store, 1)
        report = analyze_run(run)
        report.check_invariant()
        rows = store.breakdown_rows(1)
        assert len(rows) == len(report.breakdowns) > 0
        for row, bd in zip(rows, report.breakdowns):
            assert row["span_id"] == bd.span_id
            assert row["total_ps"] == bd.total_ps
            assert row["categories"] == dict(bd.categories)


class TestSchemaV2:
    def test_findings_carry_wait_state(self, tmp_path):
        # Enough concurrent calls on one handler ES -- sampled fast
        # enough to see them queued -- to trip the queue-depth detector.
        from repro.symbiosys import Stage
        from repro.symbiosys.monitor import MonitorConfig

        db = tmp_path / "busy.db"
        world = make_echo_cluster(
            seed=3, stage=Stage.FULL,
            monitoring=MonitorConfig(interval=25e-6),
            store=str(db), run_name="busy",
        )
        results = run_client_calls(
            world, [("echo", {"i": i}) for i in range(32)]
        )
        assert world.sim.run_until(lambda: len(results) == 32, limit=5.0)
        world.cluster.shutdown()
        store = PerfStore(str(db))
        try:
            findings = store.findings(1)
            assert findings, \
                "echo run under contention must produce findings"
            assert all(
                f["wait_state"] in WAIT_CATEGORIES for f in findings
            )
            archived = ArchivedRun(store, 1).findings
            assert [f.wait_state for f in archived] == \
                [f["wait_state"] for f in findings]
        finally:
            store.close()

    def test_retry_records_round_trip(self, echo_store):
        store, world = echo_store
        live = world.cluster.collector.all_retries()
        archived = ArchivedRun(store, 1).all_retries()
        assert archived == live

    def test_v1_store_migrates_in_place(self, tmp_path):
        db = str(tmp_path / "old.db")
        conn = sqlite3.connect(db)
        conn.executescript("""
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO meta VALUES ('schema_version', '1');
            CREATE TABLE runs (run_id INTEGER PRIMARY KEY,
                name TEXT NOT NULL, kind TEXT NOT NULL DEFAULT 'cluster',
                seed INTEGER, config TEXT NOT NULL DEFAULT '{}',
                tags TEXT NOT NULL DEFAULT '{}',
                extra TEXT NOT NULL DEFAULT '{}',
                created TEXT NOT NULL DEFAULT '');
            INSERT INTO runs (name) VALUES ('old');
            CREATE TABLE findings (run_id INTEGER NOT NULL,
                seq INTEGER NOT NULL, time REAL NOT NULL,
                detector TEXT NOT NULL, process TEXT NOT NULL,
                message TEXT NOT NULL, value REAL NOT NULL DEFAULT 0.0);
            INSERT INTO findings VALUES (1, 0, 0.5, 'd', 'p', 'm', 1.0);
        """)
        conn.commit()
        conn.close()

        from repro.store.schema import SCHEMA_VERSION, schema_version

        store = PerfStore(db)
        try:
            assert schema_version(store.conn) == SCHEMA_VERSION == 2
            # Old findings read back with the backfilled empty state.
            assert store.findings(1) == [{
                "time": 0.5, "detector": "d", "process": "p",
                "message": "m", "value": 1.0, "wait_state": "",
            }]
            # The v2 tables exist and read empty for the old run.
            assert store.retry_records(1) == []
            assert store.breakdown_rows(1) == []
        finally:
            store.close()

    def test_newer_schema_refuses_to_open(self, tmp_path):
        db = str(tmp_path / "future.db")
        store = PerfStore(db)
        store.conn.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        store.conn.commit()
        store.close()
        import pytest

        with pytest.raises(RuntimeError, match="newer than supported"):
            PerfStore(db)
