"""Ablation: analysis-script runtime vs collected data volume.

Extends Table V: the paper reports one point (1M samples); this sweep
shows how each script's wall-clock scales with trace volume so users
can extrapolate.  The key shape -- trace summary the steepest, profile
summary the flattest -- must hold at every size.
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    run_hepnos_experiment,
    time_analysis_scripts,
)
from .conftest import run_once

SIZES = (512, 2048, 8192)  # events per client


def _sweep():
    out = {}
    for events in SIZES:
        result = run_hepnos_experiment(TABLE_IV["C2"], events_per_client=events)
        out[events] = (result.collector.total_trace_events,
                       time_analysis_scripts(result))
    return out


def test_ablation_analysis_scaling(benchmark, report):
    results = run_once(benchmark, _sweep)
    rows = [
        {
            "events/client": events,
            "trace events": n_events,
            "profile (s)": t.profile_summary_s,
            "trace (s)": t.trace_summary_s,
            "system (s)": t.system_summary_s,
        }
        for events, (n_events, t) in results.items()
    ]
    report.append("Ablation: analysis-script runtime vs data volume")
    report.append(ascii_table(rows))

    volumes = [results[s][0] for s in SIZES]
    assert volumes == sorted(volumes)
    assert volumes[-1] > 4 * volumes[0]
    # Trace summary is the most expensive script at the largest size
    # (Table V's ordering), and its cost grows with volume.
    big = results[SIZES[-1]][1]
    small = results[SIZES[0]][1]
    assert big.trace_summary_s > big.profile_summary_s
    assert big.trace_summary_s > small.trace_summary_s
    benchmark.extra_info["volumes"] = volumes
    benchmark.extra_info["trace_s_at_max"] = round(big.trace_summary_s, 4)
