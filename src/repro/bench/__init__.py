"""Wall-clock benchmark suite for the simulation kernel and harnesses.

The simulator in :mod:`repro.sim.engine` is the substrate every layer --
Argobots, the fabric, Mercury, Margo, the services, the monitor --
reduces to, so its per-event overhead multiplies into every experiment,
fuzz run, and golden regeneration.  This package measures that overhead
in *wall-clock* terms, the one axis the simulated clock cannot see:

* :mod:`repro.bench.kernel` -- microbenchmarks of the kernel hot paths
  (event churn, the same-instant fast lane, spawn/resume, ``AnyOf``, and
  a full Margo RPC round-trip).
* :mod:`repro.bench.macro` -- end-to-end experiment presets (Sonata
  store_multi, the HEPnOS data loader, monitor on/off).

``python -m repro.bench`` runs both suites (median-of-N) and writes
``BENCH_kernel.json`` / ``BENCH_macro.json`` with machine metadata and a
calibration constant, so numbers from different machines and different
PRs stay comparable.  ``--compare OLD.json`` embeds an older run as the
baseline and reports speedups; ``--check`` fails on regressions against
a committed baseline (see ``docs/performance.md``).

The suite deliberately uses only APIs present since the seed kernel
(falling back from the event-driven wait when it is absent), so it can
be checked out against any prior revision to extend the trajectory
backwards.
"""

from .harness import (
    BenchResult,
    SuiteResult,
    check_regressions,
    compare_suites,
    machine_meta,
    time_bench,
    write_suite,
)
from .kernel import KERNEL_BENCHMARKS, run_kernel_benchmarks
from .macro import MACRO_BENCHMARKS, run_macro_benchmarks

__all__ = [
    "BenchResult",
    "KERNEL_BENCHMARKS",
    "MACRO_BENCHMARKS",
    "SuiteResult",
    "check_regressions",
    "compare_suites",
    "machine_meta",
    "run_kernel_benchmarks",
    "run_macro_benchmarks",
    "time_bench",
    "write_suite",
]
