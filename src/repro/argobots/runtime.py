"""The per-process Argobots runtime.

One :class:`AbtRuntime` exists per simulated process.  It owns the pools
and execution streams, tracks the blocked/ready/running ULT counts that
SYMBIOSYS samples when generating trace events (the Figure 10 metric),
and provides the ULT lifecycle API (spawn/join/self).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import SimEvent, Simulator
from .pool import Pool
from .sync import AbtBarrier, AbtMutex, Eventual
from .ult import ULT, UltState, WaitEventual
from .xstream import ExecutionStream

__all__ = ["AbtRuntime"]


class AbtRuntime:
    """Argobots-equivalent tasking runtime for one simulated process."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "abt",
        *,
        ctx_switch_cost: float = 50e-9,
        swallow_ult_errors: bool = False,
    ):
        self.sim = sim
        self.name = name
        #: Simulated cost of dispatching a ULT onto an ES.  Non-zero by
        #: default so cooperative yield loops always advance time.
        self.ctx_switch_cost = float(ctx_switch_cost)
        self.swallow_ult_errors = swallow_ult_errors
        self.pools: list[Pool] = []
        self.xstreams: list[ExecutionStream] = []
        #: Number of ULTs currently blocked on an eventual/mutex -- the
        #: quantity sampled for Figure 10.
        self.num_blocked = 0
        self.total_spawned = 0
        self.total_finished = 0
        self._current_ult: Optional[ULT] = None
        #: Scheduler observers (duck-typed; see
        #: :class:`repro.symbiosys.monitor.SchedRecorder` and
        #: :class:`repro.validate.invariants.InvariantMonitor`).  Every ES
        #: reports each ULT run slice to each observer, in subscription
        #: order: ``on_slice(es, ult, start, end)``.  An observer may also
        #: implement ``on_spawn(ult)`` to see ULT creation.
        self._sched_observers: list = []
        self.shutting_down = False
        self.shutdown_event: SimEvent = sim.event(f"{name}.shutdown")

    # -- observers ---------------------------------------------------------

    @property
    def sched_observer(self):
        """The first subscribed scheduler observer (None when empty).

        Assigning replaces the whole subscription list -- the historical
        single-observer semantics.  Use :meth:`add_sched_observer` to
        stack observers (e.g. telemetry plus invariant checking).
        """
        return self._sched_observers[0] if self._sched_observers else None

    @sched_observer.setter
    def sched_observer(self, observer) -> None:
        self._sched_observers = [] if observer is None else [observer]

    def add_sched_observer(self, observer) -> None:
        """Subscribe an additional scheduler observer."""
        if observer in self._sched_observers:
            raise ValueError("scheduler observer already subscribed")
        self._sched_observers.append(observer)

    def remove_sched_observer(self, observer) -> None:
        self._sched_observers.remove(observer)

    # -- construction ------------------------------------------------------

    def create_pool(self, name: str = "") -> Pool:
        pool = Pool(self.sim, name or f"{self.name}.pool{len(self.pools)}")
        self.pools.append(pool)
        return pool

    def create_xstream(self, pool: Pool, name: str = "") -> ExecutionStream:
        es = ExecutionStream(
            self, pool, name or f"{self.name}.es{len(self.xstreams)}"
        )
        self.xstreams.append(es)
        return es

    # -- ULT lifecycle -----------------------------------------------------

    def spawn(self, gen: Generator, pool: Pool, name: str = "") -> ULT:
        """Create a ULT from a generator and make it READY in ``pool``."""
        ult = ULT(gen, pool, name=name, created_at=self.sim.now)
        self.total_spawned += 1
        for obs in self._sched_observers:
            on_spawn = getattr(obs, "on_spawn", None)
            if on_spawn is not None:
                on_spawn(ult)
        pool.push(ult)
        return ult

    def self_ult(self) -> Optional[ULT]:
        """The ULT currently executing on this runtime, if any."""
        return self._current_ult

    def join(self, ult: ULT) -> Generator:
        """``result = yield from rt.join(ult)`` -- wait for termination."""
        if ult.terminated:
            if ult.error is not None:
                raise ult.error
            return ult.result
            yield  # pragma: no cover - makes this function a generator
        ev = Eventual(self, f"join:{ult.name}")
        ult.join_waiters.append(ev)
        result = yield WaitEventual(ev, None)
        if ult.error is not None:
            raise ult.error
        return result

    def join_all(self, ults: list[ULT]) -> Generator:
        """Join a list of ULTs; returns their results in order."""
        results = []
        for ult in ults:
            results.append((yield from self.join(ult)))
        return results

    def sleep(self, duration: float) -> Generator:
        """``yield from rt.sleep(dt)`` -- block the calling ULT for
        ``dt`` simulated seconds (the ES stays free)."""
        if duration < 0:
            raise ValueError("sleep duration must be non-negative")
        ev = Eventual(self, "sleep")
        yield WaitEventual(ev, duration)

    # -- synchronization factories ------------------------------------------

    def eventual(self, name: str = "eventual") -> Eventual:
        return Eventual(self, name)

    def mutex(self, name: str = "abt_mutex") -> AbtMutex:
        return AbtMutex(self, name)

    def barrier(self, parties: int, name: str = "abt_barrier") -> AbtBarrier:
        return AbtBarrier(self, parties, name)

    # -- introspection (sampled by SYMBIOSYS sysmon) -------------------------

    @property
    def num_ready(self) -> int:
        """ULTs queued in pools, waiting for an execution stream."""
        return sum(len(p) for p in self.pools)

    @property
    def num_running(self) -> int:
        """ULTs currently executing on an execution stream."""
        return sum(1 for es in self.xstreams if es.current is not None)

    @property
    def num_active(self) -> int:
        """Spawned but not yet finished."""
        return self.total_spawned - self.total_finished

    def busy_fraction(self) -> float:
        """Mean cumulative busy time per ES divided by elapsed time --
        a coarse CPU-utilization proxy for the system monitor."""
        if not self.xstreams or self.sim.now <= 0:
            return 0.0
        total = sum(es.busy_time for es in self.xstreams)
        return total / (len(self.xstreams) * self.sim.now)

    # -- shutdown -----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all execution streams once they go idle."""
        if self.shutting_down:
            return
        self.shutting_down = True
        self.shutdown_event.succeed()

    # -- internal hooks used by ES / sync ------------------------------------

    def _unblock(self, ult: ULT, value: Any) -> None:
        if ult.state is not UltState.BLOCKED:
            raise RuntimeError(f"unblocking non-blocked ULT {ult.name!r}")
        self.num_blocked -= 1
        ult._send_value = (True, value) if ult._wait_wrap else value
        ult._wait_wrap = False
        ult.state = UltState.READY
        ult.pool.push(ult)

    def _wait_timeout(self, ult: ULT, eventual: Eventual) -> None:
        if ult.state is UltState.BLOCKED and eventual._remove_waiter(ult):
            self.num_blocked -= 1
            ult._send_value = (False, None)
            ult._wait_wrap = False
            ult.state = UltState.READY
            ult.pool.push(ult)

    def _finish_ult(
        self, ult: ULT, result: Any, error: Optional[BaseException]
    ) -> None:
        ult.state = UltState.TERMINATED
        ult.finished_at = self.sim.now
        ult.result = result
        ult.error = error
        self.total_finished += 1
        waiters, ult.join_waiters = ult.join_waiters, []
        for ev in waiters:
            ev.signal(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AbtRuntime({self.name!r}, es={len(self.xstreams)}, "
            f"ready={self.num_ready}, blocked={self.num_blocked})"
        )
