"""Bench harness: timing statistics, JSON trajectory, regression gate."""

import json

from repro.bench.harness import (
    BenchResult,
    SuiteResult,
    check_ratios,
    check_regressions,
    compare_suites,
    history_entry,
    time_bench,
    write_suite,
)


def _suite_dict(median_s: float, calibration_s: float) -> dict:
    return {
        "suite": "kernel",
        "meta": {"calibration_s": calibration_s},
        "results": {
            "bench": {"median_s": median_s, "units": 100, "unit_name": "ops"}
        },
    }


def test_bench_result_median_and_rate():
    r = BenchResult(name="b", runs_s=[0.3, 0.1, 0.2], units=100, unit_name="ops")
    assert r.median_s == 0.2
    assert r.rate == 500.0


def test_time_bench_runs_fn_repeats_times():
    calls = []

    def fn():
        calls.append(1)
        return 7, "widgets"

    r = time_bench("t", fn, repeats=3)
    assert len(calls) == 3
    assert len(r.runs_s) == 3
    assert (r.units, r.unit_name) == (7, "widgets")


def test_compare_suites_normalizes_by_calibration():
    # Same normalized cost on a machine twice as fast: speedup 1.0.
    old = _suite_dict(median_s=0.2, calibration_s=0.10)
    new = _suite_dict(median_s=0.1, calibration_s=0.05)
    assert compare_suites(old, new)["bench"] == 1.0
    # Twice as fast on the same machine: speedup 2.0.
    new = _suite_dict(median_s=0.1, calibration_s=0.10)
    assert compare_suites(old, new)["bench"] == 2.0


def test_compare_suites_falls_back_to_raw_medians():
    old = _suite_dict(0.2, calibration_s=None)
    old["meta"] = {}
    new = _suite_dict(0.1, calibration_s=0.1)
    assert compare_suites(old, new)["bench"] == 2.0


def test_check_regressions_threshold():
    base = _suite_dict(0.100, 0.1)
    ok = _suite_dict(0.110, 0.1)  # 10% slower: within the 25% budget
    bad = _suite_dict(0.140, 0.1)  # 40% slower: regression
    assert check_regressions(base, ok, threshold=0.25) == []
    failures = check_regressions(base, bad, threshold=0.25)
    assert len(failures) == 1
    assert "bench" in failures[0]


def test_write_suite_embeds_baseline_and_speedups(tmp_path):
    suite = SuiteResult(
        suite="kernel",
        results=[
            BenchResult(name="bench", runs_s=[0.1], units=100, unit_name="ops")
        ],
        meta={"calibration_s": 0.1},
    )
    baseline = _suite_dict(0.2, 0.1)
    path = tmp_path / "BENCH_kernel.json"
    payload = write_suite(suite, str(path), baseline=baseline)
    assert payload["speedup_vs_baseline"]["bench"] == 2.0
    on_disk = json.loads(path.read_text())
    assert on_disk["baseline"]["results"]["bench"]["median_s"] == 0.2
    assert on_disk["results"]["bench"]["median_s"] == 0.1
    assert "history" not in on_disk  # only written when the caller passes one


def _tiny_suite() -> SuiteResult:
    return SuiteResult(
        suite="kernel",
        results=[
            BenchResult(name="bench", runs_s=[0.1], units=100, unit_name="ops")
        ],
        meta={"calibration_s": 0.05},
    )


def test_history_accumulates_instead_of_overwriting(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    entry1 = history_entry(_tiny_suite(), "2026-08-01")
    write_suite(_tiny_suite(), str(path), history=[entry1])
    prior = json.loads(path.read_text())["history"]
    entry2 = history_entry(_tiny_suite(), "2026-08-06")
    payload = write_suite(_tiny_suite(), str(path), history=prior + [entry2])
    assert [e["date"] for e in payload["history"]] == [
        "2026-08-01",
        "2026-08-06",
    ]
    first = payload["history"][0]
    assert first["date"] == "2026-08-01"
    assert first["calibration_s"] == 0.05
    assert first["results"] == {"bench": 0.1}
    # Entries now carry the dedupe identity (machine + git revision).
    assert first["machine"]
    assert "git_rev" in first


def test_check_ratios_gates_same_run_overhead():
    current = {
        "results": {
            "hepnos": {"median_s": 1.0},
            "hepnos_monitor": {"median_s": 1.1},
        }
    }
    assert check_ratios(current, [("hepnos_monitor", "hepnos", 1.2)]) == []
    failures = check_ratios(current, [("hepnos_monitor", "hepnos", 1.05)])
    assert len(failures) == 1
    assert "1.100" in failures[0] and "1.050" in failures[0]


def test_check_ratios_reports_missing_benchmarks():
    (failure,) = check_ratios(
        {"results": {"hepnos": {"median_s": 1.0}}},
        [("hepnos_monitor", "hepnos", 1.2)],
    )
    assert "missing hepnos_monitor" in failure
