"""Service test harness (shared implementations in tests/conftest.py)."""

import pytest

from tests.conftest import make_service_world, run_ult

__all__ = ["make_service_world", "run_ult", "world"]


@pytest.fixture
def world():
    return make_service_world()
