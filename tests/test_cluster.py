"""Cluster facade: construction, wiring, and teardown guarantees."""

import pytest

from repro.cluster import Cluster
from repro.experiments.presets import FAST_TEST
from repro.faults import DropRule, FaultPlan
from repro.margo import Instrumentation, MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.symbiosys import Stage

from .margo.conftest import echo_handler


def _echo_pair(cluster):
    server = cluster.process("svr", "nA", n_handler_es=1)
    client = cluster.process("cli", "nB")
    server.register("echo", echo_handler)
    client.register("echo")
    return server, client


def _run_one_echo(client, sim):
    done = []

    def body():
        out = yield from client.forward("svr", "echo", {"x": 1})
        done.append((out, sim.now))

    client.client_ult(body())
    assert sim.run_until(lambda: done, limit=1.0)
    return done[0]


def test_context_manager_tears_down_without_leaks():
    with Cluster(seed=0, stage=Stage.FULL) as cluster:
        _, client = _echo_pair(cluster)
        out, _ = _run_one_echo(client, cluster.sim)
        assert out == {"echo": {"x": 1}}
    assert cluster.leaked_events == 0
    for mi in cluster.processes.values():
        assert mi._finalizing


def test_shutdown_is_idempotent():
    cluster = Cluster(stage=None)
    _echo_pair(cluster)
    cluster.shutdown()
    leaked = cluster.leaked_events
    cluster.shutdown()
    assert cluster.leaked_events == leaked == 0


def test_cluster_matches_manual_construction():
    """The facade is pure composition: same knobs, same makespan."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(
        sim, fabric, "svr", "nA", config=MargoConfig(n_handler_es=1)
    )
    client = MargoInstance(sim, fabric, "cli", "nB")
    server.register("echo", echo_handler)
    client.register("echo")
    _, manual_at = _run_one_echo(client, sim)

    with Cluster(seed=0, stage=None) as cluster:
        _, cli = _echo_pair(cluster)
        _, facade_at = _run_one_echo(cli, cluster.sim)
    assert facade_at == manual_at


def test_process_kwargs_build_margo_config():
    with Cluster(stage=None) as cluster:
        mi = cluster.process("p", n_handler_es=3, use_progress_thread=True)
        assert mi.config.n_handler_es == 3
        assert mi.config.use_progress_thread
        assert mi.node == "node-p"  # default node is per-process


def test_process_rejects_duplicates_and_ambiguous_config():
    with Cluster(stage=None) as cluster:
        cluster.process("p")
        with pytest.raises(ValueError):
            cluster.process("p")
        with pytest.raises(ValueError):
            cluster.process("q", config=MargoConfig(), n_handler_es=2)
        assert cluster["p"] is cluster.processes["p"]


def test_preset_is_duck_typed():
    with Cluster(stage=None, preset=FAST_TEST) as cluster:
        assert cluster.fabric.config is FAST_TEST.fabric
        mi = cluster.process("p")
        assert mi.hg.config == FAST_TEST.hg_config()


def test_stage_none_disables_instrumentation():
    with Cluster(stage=None) as cluster:
        assert cluster.collector is None
        mi = cluster.process("p")
        assert isinstance(mi.instr, Instrumentation)
        assert type(mi.instr).on_forward is Instrumentation.on_forward


def test_collector_wires_symbiosys_instrumentation():
    with Cluster(stage=Stage.FULL) as cluster:
        _, client = _echo_pair(cluster)
        _run_one_echo(client, cluster.sim)
        assert cluster.collector is not None
        assert len(cluster.collector.instruments) == 2
        assert cluster.collector.merged_resilience()  # gauges present


def test_custom_instrumentation_hooks_fire():
    class Counting(Instrumentation):
        def __init__(self):
            self.forwards = 0
            self.handled = 0

        def on_forward(self, mi, handle, ult):
            self.forwards += 1

        def on_handler_start(self, mi, handle, ult):
            self.handled += 1

    instr = Counting()
    with Cluster(stage=None, instrumentation_factory=lambda: instr) as cluster:
        _, client = _echo_pair(cluster)
        _run_one_echo(client, cluster.sim)
    assert instr.forwards == 1
    assert instr.handled == 1


def test_fault_plan_wires_injector_everywhere():
    plan = FaultPlan(wire_rules=[DropRule(probability=0.0)])
    with Cluster(stage=None, fault_plan=plan) as cluster:
        assert cluster.injector is not None
        assert cluster.fabric.fault_hook is cluster.injector
        mi = cluster.process("p")
        assert mi.fault_hook is cluster.injector
        assert cluster.fault_events() == []


def test_no_fault_plan_means_no_injector():
    with Cluster(stage=None) as cluster:
        mi = cluster.process("p")
        assert cluster.injector is None
        assert cluster.fabric.fault_hook is None
        assert mi.fault_hook is None
        assert cluster.fault_events() == []
        assert cluster.resilience_report() == {
            "p": {
                "num_forward_timeouts": 0,
                "num_forward_retries": 0,
                "num_failed_over_forwards": 0,
                "num_late_responses_dropped": 0,
            }
        }
