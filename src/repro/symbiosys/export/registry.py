"""The common exporter surface: one bundle in, one artifact out.

Every export format the repo knows -- Prometheus text, series CSV,
profile CSV, trace JSON, Perfetto/Chrome trace, the persistent
performance store -- is an :class:`Exporter` registered here under a
short name.  Callers build an :class:`ExportBundle` from whatever they
have (a live :class:`~repro.symbiosys.monitor.Monitor`, a
:class:`~repro.symbiosys.instrument.SymbiosysCollector`, or both) and
ask an exporter to render or write it::

    bundle = ExportBundle.from_monitor(monitor, collector=collector)
    text = get_exporter("prometheus").render(bundle)
    get_exporter("perfetto").write(bundle, "trace.json")

Text exporters are byte-deterministic for same-seed runs; the bytes
are produced by the same functions as the historical per-format
helpers (:func:`~repro.symbiosys.export.text.to_prometheus` and
friends), so consolidating behind this registry changed no output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Type

from .profile import events_to_json, write_profile_csv
from .text import series_to_csv, to_prometheus, write_text

__all__ = [
    "ExportBundle",
    "Exporter",
    "exporter_names",
    "get_exporter",
    "register_exporter",
]


@dataclass
class ExportBundle:
    """Everything an exporter may want from a finished (or live) run.

    All fields are optional; each exporter declares what it needs and
    raises ``ValueError`` when the bundle lacks it.
    """

    monitor: Optional[object] = None
    collector: Optional[object] = None
    fault_events: Sequence[object] = ()
    #: Run identity, recorded by the store exporter.
    name: Optional[str] = None
    kind: str = "run"
    seed: Optional[int] = None
    config: dict = field(default_factory=dict)
    tags: dict = field(default_factory=dict)

    @classmethod
    def from_monitor(cls, monitor, *, collector=None, **kwargs) -> "ExportBundle":
        return cls(monitor=monitor, collector=collector, **kwargs)

    @classmethod
    def from_cluster(cls, cluster, **kwargs) -> "ExportBundle":
        """Bundle a :class:`~repro.cluster.Cluster` after ``shutdown()``."""
        kwargs.setdefault("seed", getattr(cluster, "seed", None))
        fault_events = getattr(cluster, "fault_events", None)
        kwargs.setdefault(
            "fault_events",
            fault_events() if callable(fault_events) else fault_events or (),
        )
        return cls(
            monitor=getattr(cluster, "monitor", None),
            collector=getattr(cluster, "collector", None),
            **kwargs,
        )

    def require(self, attr: str, exporter: str):
        value = getattr(self, attr)
        if value is None:
            raise ValueError(
                f"exporter {exporter!r} needs bundle.{attr}, which is unset"
            )
        return value


class Exporter:
    """One export format.

    Subclasses set :attr:`name` / :attr:`filename` and implement
    :meth:`render`; :meth:`write` defaults to rendering into a file
    with the repo's stable-newline convention.
    """

    #: Registry key, e.g. ``"prometheus"``.
    name: str = ""
    #: Conventional artifact filename, e.g. ``"metrics.prom"``.
    filename: str = ""

    def render(self, bundle: ExportBundle) -> str:
        raise NotImplementedError

    def write(self, bundle: ExportBundle, path) -> None:
        write_text(path, self.render(bundle))


_REGISTRY: Dict[str, Exporter] = {}


def register_exporter(cls: Type[Exporter]) -> Type[Exporter]:
    """Class decorator: register an exporter under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    _REGISTRY[cls.name] = cls()
    return cls


def get_exporter(name: str) -> Exporter:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown exporter {name!r} "
            f"(available: {', '.join(exporter_names())})"
        ) from None


def exporter_names() -> list:
    return sorted(_REGISTRY)


@register_exporter
class PrometheusExporter(Exporter):
    """Prometheus text-exposition snapshot of the metrics registry."""

    name = "prometheus"
    filename = "metrics.prom"

    def render(self, bundle: ExportBundle) -> str:
        monitor = bundle.require("monitor", self.name)
        return to_prometheus(monitor.registry)


@register_exporter
class SeriesCsvExporter(Exporter):
    """Ring-buffer time-series as ``name,labels,time,value`` CSV."""

    name = "csv"
    filename = "series.csv"

    def render(self, bundle: ExportBundle) -> str:
        monitor = bundle.require("monitor", self.name)
        return series_to_csv(monitor.store)


@register_exporter
class ProfileCsvExporter(Exporter):
    """Callpath-profile rows (merged origin profile) as CSV."""

    name = "profile"
    filename = "profile.csv"

    def render(self, bundle: ExportBundle) -> str:
        collector = bundle.require("collector", self.name)
        return write_profile_csv(
            collector.merged_origin_profile(), collector.registry
        )


@register_exporter
class TraceJsonExporter(Exporter):
    """Lossless trace-event JSON (``load_events_json`` round-trips it)."""

    name = "json"
    filename = "events.json"

    def render(self, bundle: ExportBundle) -> str:
        collector = bundle.require("collector", self.name)
        return events_to_json(collector.all_events())


@register_exporter
class PerfettoExporter(Exporter):
    """Chrome ``trace_event`` JSON for ui.perfetto.dev / about:tracing."""

    name = "perfetto"
    filename = "trace.json"

    def render(self, bundle: ExportBundle) -> str:
        from ..perfetto import chrome_trace_json

        return chrome_trace_json(
            monitor=bundle.monitor,
            collector=bundle.collector,
            fault_events=bundle.fault_events,
        )


@register_exporter
class CriticalPathExporter(Exporter):
    """Perfetto trace with the per-request critical-path lane added:
    each decomposed request's wait-state segments render as an async
    track flow-linked to its RPC spans."""

    name = "critical"
    filename = "critical.trace.json"

    def render(self, bundle: ExportBundle) -> str:
        from ..critical import analyze_collector
        from ..perfetto import chrome_trace_json

        collector = bundle.require("collector", self.name)
        return chrome_trace_json(
            monitor=bundle.monitor,
            collector=collector,
            fault_events=bundle.fault_events,
            critical=analyze_collector(collector, bundle.monitor),
        )
