"""Partitioned golden workloads for the parallel kernel.

Mirrors of the single-cluster golden workloads (sdskv, bake, hepnos,
sharded), rebuilt as :class:`~repro.sim.parallel.PartitionPlan`\\ s:
servers and clients live in separate logical processes and every RPC
crosses an LP boundary.  They serve two jobs:

* **Golden corpus entries** (``parallel_sdskv`` ...): executed with
  ``workers=1`` they are ordinary deterministic runs whose artifact
  digests are pinned in ``golden_corpus.json``.
* **The determinism matrix**: :func:`parallel_result` executed with
  ``workers`` in {1, 2, 4} must produce byte-identical digests -- the
  kernel's ``verify`` mode and the matrix test in
  ``tests/test_parallel_kernel.py`` both lean on this.

Note these are *different simulations* from their serial golden
namesakes (a partitioned fleet is static: no membership heartbeats, no
migration -- see docs/performance.md section 7), so they get their own
corpus entries; the byte-identity guarantee is across *worker counts*
of the same plan, serial execution included.
"""

from __future__ import annotations

import json

from ..net import FabricConfig
from ..sim.parallel import LPSpec, ParallelRunResult, PartitionPlan, run_partitioned
from ..symbiosys import Stage
from ..symbiosys.monitor import MonitorConfig
from .invariants import ValidationConfig
from .workloads import RunArtifacts

__all__ = [
    "PARALLEL_SERVICES",
    "parallel_golden_run",
    "parallel_plan",
    "parallel_result",
]

#: Same seed as the serial golden corpus.
PARALLEL_SEED = 1234

_SHARDED_SERVERS = 32
_SHARDED_SERVER_LPS = 4


def _cluster_kw() -> dict:
    return dict(
        stage=Stage.FULL,
        monitoring=MonitorConfig(interval=50e-6),
        validate=ValidationConfig(strict=True),
    )


# ---------------------------------------------------------------------------
# sdskv: one server LP, one client LP
# ---------------------------------------------------------------------------


def _sdskv_server(ctx) -> None:
    from ..services.sdskv import SdskvProvider

    server = ctx.process("sdskv-svr", "nodeS", n_handler_es=2)
    SdskvProvider(server, 0, n_databases=2)
    ctx.register_remote("sdskv-cli", "nodeC")


def _sdskv_client(ctx) -> None:
    from ..services.sdskv import SdskvClient

    client_mi = ctx.process("sdskv-cli", "nodeC")
    ctx.register_remote("sdskv-svr", "nodeS")
    client = SdskvClient(client_mi)
    done = ctx.cluster.sim.event("parallel-sdskv-done")
    ctx.set_done(done)

    def body():
        ok = 0
        for i in range(8):
            yield from client.put("sdskv-svr", 0, i % 2, f"k{i}", f"v{i}")
            ok += 1
        for i in range(8):
            value = yield from client.get("sdskv-svr", 0, i % 2, f"k{i}")
            assert value == f"v{i}"
            ok += 1
        ctx.report["rpcs_ok"] = ok
        done.succeed(ctx.cluster.sim.now)

    client_mi.client_ult(body(), name="parallel-sdskv")


# ---------------------------------------------------------------------------
# bake: one server LP, one client LP (bulk-RDMA across the boundary)
# ---------------------------------------------------------------------------


def _bake_server(ctx) -> None:
    from ..services.bake import BakeProvider

    server = ctx.process("bake-svr", "nodeS", n_handler_es=2)
    BakeProvider(server, 0)
    ctx.register_remote("bake-cli", "nodeC")


def _bake_client(ctx) -> None:
    from ..services.bake import BakeClient

    client_mi = ctx.process("bake-cli", "nodeC")
    ctx.register_remote("bake-svr", "nodeS")
    client = BakeClient(client_mi)
    done = ctx.cluster.sim.event("parallel-bake-done")
    ctx.set_done(done)

    def body():
        ok = 0
        rids = []
        for i in range(4):
            rid = yield from client.create_write_persist(
                "bake-svr", 0, bytes(512 * (i + 1))
            )
            rids.append(rid)
            ok += 1
        for i, rid in enumerate(rids):
            data = yield from client.read("bake-svr", 0, rid)
            assert len(data) == 512 * (i + 1)
            ok += 1
        ctx.report["rpcs_ok"] = ok
        done.succeed(ctx.cluster.sim.now)

    client_mi.client_ult(body(), name="parallel-bake")


# ---------------------------------------------------------------------------
# hepnos: two server LPs, one client LP (real client hashing path)
# ---------------------------------------------------------------------------


def _hepnos_server(ctx, index: int) -> None:
    from ..services.bake import BakeProvider
    from ..services.hepnos import PID_BAKE, PID_SDSKV
    from ..services.sdskv import SdskvProvider

    mi = ctx.process(f"hepnos{index}", f"snode{index}", n_handler_es=2)
    BakeProvider(mi, PID_BAKE)
    SdskvProvider(mi, PID_SDSKV, n_databases=2)
    other = 1 - index
    ctx.register_remote(f"hepnos{other}", f"snode{other}")
    ctx.register_remote("hepnos-cli", "cnode0")


def _hepnos_client(ctx) -> None:
    from ..services.hepnos import HEPnOSClient, HEPnOSService
    from ..services.hepnos.service import _ServerInfo

    client_mi = ctx.process("hepnos-cli", "cnode0")
    # Client-side service stub: routing needs only the roster
    # (addr/node/db counts), never the server objects themselves.
    service = HEPnOSService()
    for i in range(2):
        ctx.register_remote(f"hepnos{i}", f"snode{i}")
        service.info.append(
            _ServerInfo(addr=f"hepnos{i}", node=f"snode{i}", n_databases=2)
        )
        service.group.join(f"hepnos{i}")
    client = HEPnOSClient(client_mi, service)
    done = ctx.cluster.sim.event("parallel-hepnos-done")
    ctx.set_done(done)

    def body():
        ok = 0
        for i in range(12):
            yield from client.store_event(f"run0/event{i}", {"e": i})
            ok += 1
        for i in range(0, 12, 3):
            value = yield from client.load_event(f"run0/event{i}")
            assert value == {"e": i}
            ok += 1
        ctx.report["rpcs_ok"] = ok
        done.succeed(ctx.cluster.sim.now)

    client_mi.client_ult(body(), name="parallel-hepnos")


# ---------------------------------------------------------------------------
# sharded: a 32-server static fleet over 4 server LPs + 1 client LP
# ---------------------------------------------------------------------------


def _sharded_server(ctx, local_indices: list[int]) -> None:
    from ..shard import ShardedKVService

    ctx.register_remote("shard-cli", "cnode0")
    ShardedKVService.deploy_partition(ctx, _SHARDED_SERVERS, local_indices)


def _sharded_client(ctx) -> None:
    from ..shard import ShardedKVService

    client_mi = ctx.process("shard-cli", "cnode0")
    router = ShardedKVService.make_partition_router(
        ctx, client_mi, _SHARDED_SERVERS
    )
    done = ctx.cluster.sim.event("parallel-sharded-done")
    ctx.set_done(done)

    def body():
        ok = 0
        for i in range(24):
            yield from router.put(f"k{i:03d}", f"v{i}")
            ok += 1
        for i in range(12):
            yield from router.put_event("golden.ds", 0, i, {"e": i})
            ok += 1
        for i in range(24):
            value = yield from router.get(f"k{i:03d}")
            assert value == f"v{i}"
            ok += 1
        for i in range(0, 12, 3):
            value = yield from router.get_event("golden.ds", 0, i)
            assert value == {"e": i}
            ok += 1
        ctx.report["rpcs_ok"] = ok
        done.succeed(ctx.cluster.sim.now)

    client_mi.client_ult(body(), name="parallel-sharded")


def _sharded_lps() -> list[LPSpec]:
    from ..shard import ShardedKVService

    parts = ShardedKVService.partition_servers(
        _SHARDED_SERVERS, _SHARDED_SERVER_LPS
    )
    lps = []
    for lp, indices in enumerate(parts):
        local = list(indices)
        lps.append(
            LPSpec(
                f"servers{lp}",
                lambda ctx, local=local: _sharded_server(ctx, local),
            )
        )
    lps.append(LPSpec("client", _sharded_client))
    return lps


# ---------------------------------------------------------------------------
# plans and runners
# ---------------------------------------------------------------------------

PARALLEL_SERVICES = ("sdskv", "bake", "hepnos", "sharded")


def parallel_plan(service: str, *, collect: bool = True) -> PartitionPlan:
    """The canonical partition plan for one golden service."""
    if service == "sdskv":
        lps = [LPSpec("server", _sdskv_server), LPSpec("client", _sdskv_client)]
    elif service == "bake":
        lps = [LPSpec("server", _bake_server), LPSpec("client", _bake_client)]
    elif service == "hepnos":
        lps = [
            LPSpec("server0", lambda ctx: _hepnos_server(ctx, 0)),
            LPSpec("server1", lambda ctx: _hepnos_server(ctx, 1)),
            LPSpec("client", _hepnos_client),
        ]
    elif service == "sharded":
        lps = _sharded_lps()
    else:
        raise ValueError(
            f"unknown parallel service {service!r} "
            f"(expected one of {list(PARALLEL_SERVICES)})"
        )
    return PartitionPlan(
        lps=lps,
        seed=PARALLEL_SEED,
        fabric_config=FabricConfig(),
        cluster_kw=_cluster_kw(),
        collect=collect,
        name=f"parallel_{service}",
    )


def parallel_result(
    service: str,
    *,
    workers: int = 1,
    verify: bool = False,
    collect: bool = True,
) -> ParallelRunResult:
    """Execute one partitioned golden service and return the raw
    kernel result (benchmarks and the CLI build on this)."""
    return run_partitioned(
        parallel_plan(service, collect=collect), workers=workers, verify=verify
    )


def parallel_golden_run(
    service: str, *, workers: int = 1, verify: bool = False
) -> RunArtifacts:
    """One partitioned golden run rendered as :class:`RunArtifacts`
    (the corpus entry shape): per-LP exports concatenated under LP
    banners, the merged series view as the CSV export, and the
    kernel's deterministic run card prefixed to the profile text."""
    result = parallel_result(service, workers=workers, verify=verify)
    total_violations = sum(r["violations"] for r in result.lp_reports)
    if total_violations:
        raise RuntimeError(
            f"parallel {service}: {total_violations} invariant violation(s)"
        )
    if not result.done:
        raise RuntimeError(f"parallel {service} run did not finish")

    def banner(r: dict) -> str:
        return f"# === lp{r['lp_id']} {r['name']} ==="

    prometheus = "\n".join(
        f"{banner(r)}\n{r['artifacts']['prometheus']}"
        for r in result.lp_reports
    )
    profile = "\n\n".join(
        [result.report()]
        + [f"{banner(r)}\n{r['artifacts']['profile']}" for r in result.lp_reports]
    )
    perfetto = json.dumps(
        {
            f"lp{r['lp_id']}:{r['name']}": json.loads(
                r["artifacts"]["perfetto"]
            )
            for r in result.lp_reports
        },
        sort_keys=True,
    )
    rpcs_ok = sum(r["extra"].get("rpcs_ok", 0) for r in result.lp_reports)
    return RunArtifacts(
        workload=f"parallel_{service}",
        seed=PARALLEL_SEED,
        preset="fast",
        scale=result.n_lps,
        makespan=result.makespan,
        rpcs_ok=rpcs_ok,
        rpcs_failed=0,
        leaked_events=sum(r["leaked_events"] for r in result.lp_reports),
        violations=[],
        prometheus_text=prometheus,
        series_csv=result.merged_series_csv(),
        perfetto_json=perfetto,
        profile_text=profile,
    )
