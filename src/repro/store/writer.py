"""Batched deterministic writer for the performance store.

All appends accumulate in per-table row buffers and land in one
``executemany`` batch per table at :meth:`StoreWriter.flush` -- a run's
worth of telemetry is one transaction, not ten thousand.  Row order is
deterministic: series are written in sorted ``(name, labels)`` order
(the exporters' order), events/slices/findings in recording order, so
two same-seed runs produce row-for-row identical stores.

The free functions at the bottom are the high-level sinks the rest of
the stack calls: :func:`record_cluster_run` (what ``Cluster(store=...)``
invokes at shutdown), :func:`record_overhead_study`, and
:func:`record_bench_suite`.
"""

from __future__ import annotations

import json
import platform
import subprocess
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..symbiosys.metrics import MetricsRegistry, SeriesStore
    from ..symbiosys.monitor import Finding, Monitor, SchedSlice
    from ..symbiosys.profiling import ProfileStore
    from ..symbiosys.tracing import TraceEvent
    from . import PerfStore

__all__ = [
    "StoreWriter",
    "git_rev",
    "labels_to_text",
    "normalized_machine",
    "record_bench_suite",
    "record_cluster_run",
    "record_overhead_study",
    "record_parallel_run",
]


def labels_to_text(labels) -> str:
    """Canonical label rendering: sorted ``k=v`` pairs joined with
    ``|`` -- the same string the CSV exporter prints, so store rows and
    CSV rows key identically."""
    if not labels:
        return ""
    if isinstance(labels, dict):
        labels = sorted((str(k), str(v)) for k, v in labels.items())
    return "|".join(f"{k}={v}" for k, v in labels)


def normalized_machine() -> str:
    """A stable machine identity for history dedupe: coarse enough to
    survive kernel upgrades, fine enough to separate real hardware/
    interpreter changes."""
    v = platform.python_version_tuple()
    return (
        f"{platform.system()}-{platform.machine()}"
        f"-{platform.python_implementation()}{v[0]}.{v[1]}"
    )


def git_rev(default: str = "unknown") -> str:
    """Short git revision of the working tree, or ``default`` when not
    in a repository (CI tarballs, installed packages)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class StoreWriter:
    """Batched writes into one :class:`~repro.store.PerfStore`.

    Use as a context manager (flushes on clean exit) or call
    :meth:`flush` explicitly.  One writer may record several runs.
    """

    def __init__(self, store: "PerfStore"):
        self.store = store
        self._runs: list[tuple] = []
        self._run_ids: list[int] = []
        self._metrics: list[tuple] = []  # (run, name, labels, kind, help)
        self._samples: list[tuple] = []  # (run, name, labels, t, value)
        self._events: list[tuple] = []
        self._slices: list[tuple] = []
        self._findings: list[tuple] = []
        self._retries: list[tuple] = []
        self._breakdowns: list[tuple] = []
        self._profiles: list[tuple] = []
        self._callpath_names: list[tuple] = []
        self._bench_results: list[tuple] = []
        self._bench_history: list[tuple] = []

    # -- runs ---------------------------------------------------------------

    def begin_run(
        self,
        name: str,
        *,
        kind: str = "cluster",
        seed: Optional[int] = None,
        config: Optional[dict] = None,
        tags: Optional[dict] = None,
        extra: Optional[dict] = None,
        created: str = "",
    ) -> int:
        """Allocate a run id (immediately, so references work) and queue
        the run row."""
        conn = self.store.conn
        cur = conn.execute(
            "INSERT INTO runs (name, kind, seed, config, tags, extra, created)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                name, kind, seed,
                _dumps(config or {}), _dumps(tags or {}), _dumps(extra or {}),
                created,
            ),
        )
        run_id = cur.lastrowid
        self._run_ids.append(run_id)
        return run_id

    # -- metric time-series -------------------------------------------------

    def add_series(
        self,
        run_id: int,
        name: str,
        labels,
        samples: Iterable[tuple[float, float]],
        *,
        kind: str = "gauge",
        help: str = "",
    ) -> None:
        text = labels_to_text(labels)
        self._metrics.append((run_id, name, text, kind, help))
        self._samples.extend(
            (run_id, name, text, t, v) for t, v in samples
        )

    def record_series_store(
        self,
        run_id: int,
        store: "SeriesStore",
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        """Every time-series of a monitor's store, in sorted export
        order; metric kind/help come from the registry when known."""
        for ts in store.all_series():
            kind, help = "gauge", ""
            if registry is not None:
                try:
                    kind, help = registry.family_info(ts.name)
                except KeyError:
                    pass
            self.add_series(
                run_id, ts.name, ts.labels, ts.samples(),
                kind=kind, help=help,
            )

    # -- monitor ------------------------------------------------------------

    def record_monitor(self, run_id: int, monitor: "Monitor") -> None:
        """The full telemetry of one monitored run: series, findings,
        scheduler slices."""
        self.record_series_store(run_id, monitor.store, monitor.registry)
        self.record_findings(run_id, monitor.findings)
        self.record_sched_slices(run_id, monitor.sched.slices)

    def record_findings(
        self, run_id: int, findings: Iterable["Finding"]
    ) -> None:
        base = len(self._findings)
        self._findings.extend(
            (run_id, base + i, f.time, f.detector, f.process, f.message,
             f.value, getattr(f, "wait_state", ""))
            for i, f in enumerate(findings)
        )

    def record_retries(self, run_id: int, retries: Iterable) -> None:
        """Retry/timeout records from the collector's forward hooks."""
        base = len(self._retries)
        self._retries.extend(
            (run_id, base + i, r.time, r.process, r.request_id, r.rpc_name,
             r.attempt, r.delay, r.target, r.kind)
            for i, r in enumerate(retries)
        )

    def record_breakdowns(self, run_id: int, report) -> None:
        """Per-request critical-path decompositions of one
        :class:`~repro.symbiosys.critical.CriticalReport`, one row per
        breakdown, JSON for the nested category/segment/blame shapes."""
        base = len(self._breakdowns)
        self._breakdowns.extend(
            (
                run_id, base + i, bd.request_id, bd.span_id, bd.rpc_name,
                bd.origin, bd.target, bd.start_ps, bd.total_ps,
                bd.start_true, bd.end_true, bd.n_faults,
                _dumps(dict(bd.categories)),
                _dumps([list(seg) for seg in bd.segments]),
                _dumps([[b.category, b.occupant, b.overlap_ps]
                        for b in bd.blame]),
            )
            for i, bd in enumerate(report.breakdowns)
        )

    def record_sched_slices(
        self, run_id: int, slices: Iterable["SchedSlice"]
    ) -> None:
        base = len(self._slices)
        self._slices.extend(
            (run_id, base + i, s.process, s.es, s.ult, s.kind, s.start,
             s.end, s.reason)
            for i, s in enumerate(slices)
        )

    # -- traces and profiles ------------------------------------------------

    def record_trace_events(
        self, run_id: int, events: Iterable["TraceEvent"]
    ) -> None:
        base = len(self._events)
        self._events.extend(
            (
                run_id, base + i, ev.kind.value, ev.request_id, ev.order,
                ev.lamport, ev.process, ev.local_ts, ev.true_ts,
                ev.rpc_name, ev.callpath, ev.span_id, ev.parent_span_id,
                ev.provider_id, _dumps(ev.data), _dumps(ev.pvars),
                _dumps(ev.sysstats),
            )
            for i, ev in enumerate(events)
        )

    def record_profile(
        self,
        run_id: int,
        side: str,
        store: "ProfileStore",
        registry=None,
    ) -> None:
        """Flatten one callpath-profile store (count/total/min/max plus
        the distribution reservoir) in sorted key order."""
        for key in sorted(
            store.keys(), key=lambda k: (k.callpath, k.origin, k.target)
        ):
            name = registry.decode(key.callpath) if registry else ""
            for interval, stats in sorted(store.intervals_for(key).items()):
                self._profiles.append(
                    (
                        run_id, side, key.callpath, name, key.origin,
                        key.target, interval, stats.count, stats.total,
                        stats.minimum, stats.maximum,
                        _dumps(stats.samples()),
                    )
                )

    def record_callpath_names(self, run_id: int, registry) -> None:
        """Persist the component-hash -> RPC-name map so archived
        callpaths decode without the live registry."""
        from ..symbiosys.callpath import hash16

        for name in registry.known_names():
            self._callpath_names.append((run_id, hash16(name), name))

    def record_collector(self, run_id: int, collector) -> None:
        """Everything a SYMBIOSYS collector holds: trace events, retry
        records, both profile sides, and the callpath name map."""
        self.record_trace_events(run_id, collector.all_events())
        all_retries = getattr(collector, "all_retries", None)
        if all_retries is not None:
            self.record_retries(run_id, all_retries())
        self.record_profile(
            run_id, "origin", collector.merged_origin_profile(),
            collector.registry,
        )
        self.record_profile(
            run_id, "target", collector.merged_target_profile(),
            collector.registry,
        )
        self.record_callpath_names(run_id, collector.registry)

    # -- bench --------------------------------------------------------------

    def record_bench_results(
        self, run_id: int, suite_name: str, results: dict,
        calibration_s: Optional[float],
    ) -> None:
        """``results`` is the BENCH JSON ``results`` mapping:
        name -> {median_s, runs_s, units, unit_name, rate_per_s}."""
        for name in sorted(results):
            entry = results[name]
            self._bench_results.append(
                (
                    run_id, suite_name, name, entry["median_s"],
                    _dumps(entry.get("runs_s", [])),
                    entry.get("units", 0), entry.get("unit_name", "ops"),
                    entry.get("rate_per_s", 0.0), calibration_s,
                )
            )

    def record_bench_history(
        self,
        suite_name: str,
        entry: dict,
        *,
        machine: Optional[str] = None,
        rev: Optional[str] = None,
    ) -> None:
        """Upsert one dated history entry.  The ``UNIQUE(suite, machine,
        git_rev)`` constraint makes re-recording the same machine+rev
        replace the old row -- the idempotency the JSON lists lacked."""
        self._bench_history.append(
            (
                suite_name,
                machine if machine is not None
                else entry.get("machine", normalized_machine()),
                rev if rev is not None else entry.get("git_rev", git_rev()),
                entry.get("date", ""),
                entry.get("calibration_s"),
                _dumps(entry.get("results", {})),
            )
        )

    # -- flushing -----------------------------------------------------------

    def flush(self) -> None:
        """Write every buffered row in one transaction."""
        conn = self.store.conn
        if self._metrics:
            conn.executemany(
                "INSERT OR IGNORE INTO metrics (run_id, name, labels, kind,"
                " help) VALUES (?, ?, ?, ?, ?)",
                self._metrics,
            )
        if self._samples:
            conn.executemany(
                "INSERT INTO samples (metric_id, t, value) SELECT metric_id,"
                " ?4, ?5 FROM metrics WHERE run_id = ?1 AND name = ?2 AND"
                " labels = ?3",
                self._samples,
            )
        if self._events:
            conn.executemany(
                "INSERT INTO trace_events (run_id, seq, kind, request_id,"
                " ord, lamport, process, local_ts, true_ts, rpc_name,"
                " callpath, span_id, parent_span_id, provider_id, data,"
                " pvars, sysstats) VALUES"
                " (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._events,
            )
        if self._slices:
            conn.executemany(
                "INSERT INTO sched_slices (run_id, seq, process, es, ult,"
                " kind, start, end, reason)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._slices,
            )
        if self._findings:
            conn.executemany(
                "INSERT INTO findings (run_id, seq, time, detector, process,"
                " message, value, wait_state)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                self._findings,
            )
        if self._retries:
            conn.executemany(
                "INSERT INTO retry_records (run_id, seq, time, process,"
                " request_id, rpc_name, attempt, delay, target, kind)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._retries,
            )
        if self._breakdowns:
            conn.executemany(
                "INSERT INTO breakdowns (run_id, seq, request_id, span_id,"
                " rpc_name, origin, target, start_ps, total_ps, start_true,"
                " end_true, n_faults, categories, segments, blame)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._breakdowns,
            )
        if self._profiles:
            conn.executemany(
                "INSERT INTO profiles (run_id, side, callpath,"
                " callpath_name, origin, target, interval, count, total,"
                " min, max, reservoir)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._profiles,
            )
        if self._callpath_names:
            conn.executemany(
                "INSERT OR IGNORE INTO callpath_names (run_id, component,"
                " name) VALUES (?, ?, ?)",
                self._callpath_names,
            )
        if self._bench_results:
            conn.executemany(
                "INSERT INTO bench_results (run_id, suite, benchmark,"
                " median_s, runs_s, units, unit_name, rate_per_s,"
                " calibration_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._bench_results,
            )
        if self._bench_history:
            conn.executemany(
                "INSERT INTO bench_history (suite, machine, git_rev, date,"
                " calibration_s, results) VALUES (?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(suite, machine, git_rev) DO UPDATE SET"
                " date = excluded.date,"
                " calibration_s = excluded.calibration_s,"
                " results = excluded.results",
                self._bench_history,
            )
        for buf in (
            self._metrics, self._samples, self._events, self._slices,
            self._findings, self._retries, self._breakdowns,
            self._profiles, self._callpath_names,
            self._bench_results, self._bench_history,
        ):
            buf.clear()
        conn.commit()

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.flush()
        return False


# -- high-level sinks ---------------------------------------------------------


def _open_writer(store) -> tuple["StoreWriter", bool]:
    """Accept a path, a PerfStore, or a StoreWriter; report whether the
    caller owns (and must close) the underlying store."""
    from . import PerfStore

    if isinstance(store, StoreWriter):
        return store, False
    if isinstance(store, PerfStore):
        return StoreWriter(store), False
    return StoreWriter(PerfStore(store)), True


def record_cluster_run(
    store: Union[str, "PerfStore", "StoreWriter"],
    cluster,
    *,
    name: str = "cluster",
    kind: str = "cluster",
    tags: Optional[dict] = None,
    config: Optional[dict] = None,
    created: str = "",
) -> int:
    """Persist one finished :class:`~repro.cluster.Cluster` run: the
    monitor's telemetry (when monitoring was on) and the collector's
    traces/profiles/breakdowns (when instrumentation was on).  When
    both are present, the critical-path engine runs once here and its
    per-request breakdowns land in the ``breakdowns`` table; detector
    findings are stored with their dominant wait state filled in."""
    writer, own = _open_writer(store)
    try:
        extra = {
            "fault_events": [list(ev) for ev in cluster.fault_events()],
        }
        if cluster.collector is not None:
            extra["resilience"] = cluster.collector.merged_resilience()
        run_id = writer.begin_run(
            name,
            kind=kind,
            seed=getattr(cluster, "seed", None),
            config=config,
            tags=tags,
            extra=extra,
            created=created,
        )
        report = None
        if cluster.collector is not None:
            from ..symbiosys.critical import analyze_collector

            report = analyze_collector(cluster.collector, cluster.monitor)
        if cluster.monitor is not None:
            monitor = cluster.monitor
            findings = monitor.findings
            if report is not None:
                from ..symbiosys.critical import annotate_findings

                findings = annotate_findings(findings, report)
            writer.record_series_store(run_id, monitor.store,
                                       monitor.registry)
            writer.record_findings(run_id, findings)
            writer.record_sched_slices(run_id, monitor.sched.slices)
        if cluster.collector is not None:
            writer.record_collector(run_id, cluster.collector)
            writer.record_breakdowns(run_id, report)
        writer.flush()
        return run_id
    finally:
        if own:
            writer.store.close()


def record_parallel_run(
    store: Union[str, "PerfStore", "StoreWriter"],
    result,
    *,
    name: str = "parallel",
    tags: Optional[dict] = None,
    config: Optional[dict] = None,
    created: str = "",
) -> int:
    """Persist one parallel-kernel run
    (:class:`~repro.sim.parallel.ParallelRunResult`): the kernel's
    self-observability series (windows, boundary events, imbalance)
    plus per-LP summaries and the deterministic digests.  Wall-clock
    timing lands in ``extra`` -- a real measurement, never part of a
    deterministic surface."""
    writer, own = _open_writer(store)
    try:
        run_config = {
            "plan": result.plan_name,
            "n_lps": result.n_lps,
            "workers_requested": result.workers_requested,
            "workers_used": result.workers_used,
            "lookahead": result.lookahead,
        }
        if config:
            run_config.update(config)
        extra = {
            "kernel_report": result.report(),
            "digests": result.digests(),
            "timing": result.timing(),
            "lp_summaries": [
                {
                    "lp_id": r["lp_id"],
                    "name": r["name"],
                    "events_processed": r["events_processed"],
                    "exported_bytes": r["exported_bytes"],
                    "imported_bytes": r["imported_bytes"],
                    "stranded_boundary": r["stranded_boundary"],
                    "leaked_events": r["leaked_events"],
                    "violations": r["violations"],
                    "makespan": r["makespan"],
                }
                for r in result.lp_reports
            ],
        }
        run_id = writer.begin_run(
            name,
            kind="parallel",
            seed=result.seed,
            config=run_config,
            tags=tags,
            extra=extra,
            created=created,
        )
        writer.record_series_store(run_id, result.store, result.registry)
        writer.flush()
        return run_id
    finally:
        if own:
            writer.store.close()


def record_overhead_study(
    store: Union[str, "PerfStore", "StoreWriter"],
    study,
    *,
    name: str = "overhead",
    seed: Optional[int] = None,
    tags: Optional[dict] = None,
    created: str = "",
) -> int:
    """Persist an overhead study's simulated quantities as one run:
    per-stage makespan/trace-count series keyed by a ``stage`` label."""
    writer, own = _open_writer(store)
    try:
        run_id = writer.begin_run(
            name, kind="overhead", seed=seed, tags=tags, created=created,
        )
        for row in study.rows():
            labels = {"stage": row["stage"]}
            writer.add_series(
                run_id, "overhead_mean_sim_makespan_s", labels,
                [(0.0, row["mean_sim_makespan_s"])],
                help="Mean simulated makespan of one overhead-study stage",
            )
            writer.add_series(
                run_id, "overhead_trace_events", labels,
                [(0.0, float(row["trace_events"]))],
                help="Trace events collected at one overhead-study stage",
            )
        writer.flush()
        return run_id
    finally:
        if own:
            writer.store.close()


def record_bench_suite(
    store: Union[str, "PerfStore", "StoreWriter"],
    payload: dict,
    *,
    date: str = "",
    created: str = "",
) -> int:
    """Persist one bench suite payload (the BENCH JSON dict) as a run,
    plus an idempotent history entry keyed by machine and git rev."""
    writer, own = _open_writer(store)
    try:
        suite_name = payload.get("suite", "bench")
        meta = payload.get("meta", {})
        results = payload.get("results", {})
        run_id = writer.begin_run(
            f"bench-{suite_name}",
            kind="bench",
            config={"meta": meta},
            created=created,
        )
        writer.record_bench_results(
            run_id, suite_name, results, meta.get("calibration_s")
        )
        writer.record_bench_history(
            suite_name,
            {
                "date": date,
                "calibration_s": meta.get("calibration_s"),
                "results": {
                    bench: entry["median_s"]
                    for bench, entry in sorted(results.items())
                },
            },
        )
        writer.flush()
        return run_id
    finally:
        if own:
            writer.store.close()
