"""Monitor-driven shard telemetry and hot-spot rebalancing.

:class:`ShardHotspotDetector` plugs into the monitor's
``detector_factories`` extension point.  On every sample tick it

* records per-shard operation counts into the monitor's time-series
  store (``shard_ops`` with ``process``/``shard`` labels — the feed for
  the ``shards`` analysis op),
* watches for a *hot* shard: one shard absorbing more than
  ``hot_fraction`` of a server's window traffic while that server holds
  more than one shard, and
* when it fires, asks the :class:`~repro.shard.migration.ShardManager`
  to move the hot shard to the coldest live server.  The manager defers
  actuation onto the simulator queue, so the sample tick itself stays a
  pure observer.

Findings are edge-triggered: each shard is rebalanced at most once per
``cooldown`` window.
"""

from __future__ import annotations

from typing import Optional

from ..symbiosys.monitor import AnomalyDetector, Finding, MonitorConfig

__all__ = ["ShardHotspotDetector", "make_hotspot_detector_factory"]


class ShardHotspotDetector(AnomalyDetector):
    """Per-shard telemetry recorder + hot-spot-triggered rebalancer."""

    name = "shard_hotspot"

    def __init__(
        self,
        config: MonitorConfig,
        *,
        manager,
        providers: dict,
        hot_fraction: float = 0.5,
        min_window_ops: int = 16,
        cooldown: float = 1e-3,
    ):
        self.config = config
        self.manager = manager
        self.providers = providers
        self.hot_fraction = hot_fraction
        self.min_window_ops = min_window_ops
        self.cooldown = cooldown
        self._last_ops: dict[tuple[str, int], int] = {}
        self._last_moved: dict[int, float] = {}
        #: Rebalances this detector has requested (accepted by the
        #: manager), as (time, shard, src, dst).
        self.rebalances: list[tuple[float, int, str, str]] = []

    def on_sample(self, t: float, monitor) -> list[Finding]:
        findings: list[Finding] = []
        window: dict[str, dict[int, int]] = {}
        for addr in sorted(self.providers):
            provider = self.providers[addr]
            deltas: dict[int, int] = {}
            for shard, total in sorted(provider.ops_by_shard.items()):
                key = (addr, shard)
                deltas[shard] = total - self._last_ops.get(key, 0)
                self._last_ops[key] = total
                monitor.store.series(
                    "shard_ops",
                    {"process": addr, "shard": f"{shard:04d}"},
                ).append(t, total)
            window[addr] = deltas
        hot = self._find_hot_shard(t, window)
        if hot is not None:
            shard, src, ops, total = hot
            dst = self._coldest_server(window, exclude=src)
            if dst is not None and self.manager.request_rebalance(shard, dst):
                self._last_moved[shard] = t
                self.rebalances.append((t, shard, src, dst))
                findings.append(
                    Finding(
                        t,
                        self.name,
                        src,
                        f"hot shard {shard}: {ops}/{total} window ops; "
                        f"rebalancing to {dst}",
                        value=ops,
                    )
                )
        return findings

    def _find_hot_shard(
        self, t: float, window: dict[str, dict[int, int]]
    ) -> Optional[tuple[int, str, int, int]]:
        """Hottest (shard, server) over the window, if it qualifies."""
        best: Optional[tuple[int, str, int, int]] = None
        for addr in sorted(window):
            deltas = window[addr]
            total = sum(deltas.values())
            if total < self.min_window_ops or len(self.providers[addr].shards) < 2:
                continue
            for shard in sorted(deltas):
                ops = deltas[shard]
                if ops < self.hot_fraction * total:
                    continue
                if t - self._last_moved.get(shard, -1e9) < self.cooldown:
                    continue
                if best is None or ops > best[2]:
                    best = (shard, addr, ops, total)
        return best

    def _coldest_server(
        self, window: dict[str, dict[int, int]], exclude: str
    ) -> Optional[str]:
        candidates = []
        for addr in sorted(self.providers):
            if addr == exclude or addr not in self.manager.group:
                continue
            if self.manager._crashed(addr):
                continue
            candidates.append((sum(window.get(addr, {}).values()), addr))
        if not candidates:
            return None
        return min(candidates)[1]


def make_hotspot_detector_factory(
    manager,
    providers: dict,
    **kw,
):
    """``detector_factories`` entry bound to a deployed sharded service.

    Usage::

        service = ShardedKVService.deploy(cluster, 32)
        cluster.monitor.detectors.append(
            make_hotspot_detector_factory(service.manager,
                                          service.providers)(
                cluster.monitor.config))
    """

    def factory(config: MonitorConfig) -> ShardHotspotDetector:
        return ShardHotspotDetector(
            config, manager=manager, providers=providers, **kw
        )

    return factory
