"""The SYMBIOSYS instrumentation implementation of the Margo hooks.

One instance per Mochi process.  Depending on the configured
:class:`~repro.symbiosys.stages.Stage` it:

* propagates callpath ancestry and trace metadata in RPC headers
  (STAGE1+),
* measures the Table III intervals with the strategy the paper uses for
  each -- ULT-local keys for origin execution / target handler / target
  execution / target completion-callback time; Mercury handle PVARs for
  the (de)serialization, internal-RDMA, and origin-callback intervals --
  and feeds per-process origin/target profile stores (STAGE2+),
* emits trace events at t1/t14 (origin) and t5/t8 (target) with sampled
  OS and tasking statistics (STAGE2+),
* opens a PVAR session against Mercury and fuses sampled PVAR values into
  profiles and trace records on the fly (FULL).
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from ..margo.hooks import Instrumentation
from .callpath import CallpathRegistry, push
from .profiling import ProfileKey, ProfileStore
from .stages import Stage
from .tracing import (
    _KIND_CODE,
    TRACE_PVAR_INT_KEYS,
    EventKind,
    SpanIdAllocator,
    TraceBuffer,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..argobots import ULT
    from ..mercury import HGHandle, PvarSession
    from ..margo import MargoInstance

__all__ = ["SymbiosysInstrumentation"]

# Columnar kind codes for the TraceBuffer.append_event hot path.
_K_ORIGIN_FORWARD = _KIND_CODE[EventKind.ORIGIN_FORWARD]
_K_ORIGIN_COMPLETE = _KIND_CODE[EventKind.ORIGIN_COMPLETE]
_K_TARGET_ULT_START = _KIND_CODE[EventKind.TARGET_ULT_START]
_K_TARGET_RESPOND = _KIND_CODE[EventKind.TARGET_RESPOND]

#: NO_OBJECT PVARs sampled into origin-side trace events at t14.  The
#: resilience gauges ride along so faulted runs expose degraded-mode
#: state in every origin trace record.  The order is the trace record
#: schema, owned by the tracing module.
_T14_PVARS = TRACE_PVAR_INT_KEYS
#: HANDLE PVARs sampled on the target at handler end (t13).
_TARGET_HANDLE_PVARS = (
    "input_deserialization_time",
    "output_serialization_time",
    "internal_rdma_transfer_time",
    "bulk_transfer_time",
)


class SymbiosysInstrumentation(Instrumentation):
    """Per-process instrumentation state + hook implementations."""

    def __init__(
        self,
        stage: Stage,
        registry: CallpathRegistry,
        span_ids: Optional[SpanIdAllocator] = None,
    ):
        self.stage = stage
        self.registry = registry
        #: Run-scoped span-id source -- shared across the run's processes
        #: when handed out by a collector, private otherwise.  Never a
        #: module global (span ids appear in exports and must be
        #: identical across same-seed runs).
        self.span_ids = span_ids if span_ids is not None else SpanIdAllocator()
        self.process: Optional[str] = None
        self.mi: Optional["MargoInstance"] = None
        self.origin_profile = ProfileStore()
        self.target_profile = ProfileStore()
        self.trace: Optional[TraceBuffer] = None
        self._pvar_session: Optional["PvarSession"] = None
        #: Bound zero-arg readers for _T14_PVARS, resolved once at
        #: attach time (FULL stage only).
        self._t14_readers: tuple = ()

    # -- wiring ---------------------------------------------------------------

    def attach(self, mi: "MargoInstance") -> None:
        """Called by MargoInstance at construction time."""
        self.process = mi.addr
        self.mi = mi
        self.trace = TraceBuffer(mi.addr)
        mi.hg.pvars_enabled = self.stage >= Stage.FULL
        if self.stage >= Stage.FULL:
            # The faithful data-exchange path: a PVAR session opened from
            # Margo's init routine (paper §IV-C).  Each sampled PVAR is
            # resolved to its slot once, here, so the per-RPC t14 fusion
            # is a flat tuple of bound reads.
            self._pvar_session = mi.hg.pvar_session_init()
            self._t14_readers = tuple(
                self._pvar_session.reader(name) for name in _T14_PVARS
            )

    def resilience_counters(self) -> dict[str, int]:
        """Degraded-mode gauges of the attached process (always live --
        the resilience counters are not gated on the stage)."""
        if self.mi is None:
            return {}
        return self.mi.resilience_counters()

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _ctx(
        ult: Optional["ULT"], mi: "MargoInstance", new_request: bool = False
    ) -> dict:
        """The per-request trace context living in ULT-local storage.

        Handler ULTs inherit their context from the incoming request
        header (set by ``on_handler_start``); an end-client ULT gets a
        fresh globally unique request id for every top-level forward
        (``new_request=True``), so each application operation is its own
        distributed trace.
        """
        if ult is None:
            return {"request_id": mi.next_request_id(), "next_order": 0}
        ctx = ult.local.get("trace_ctx")
        if ctx is None or (new_request and not ctx.get("inherited")):
            ctx = {"request_id": mi.next_request_id(), "next_order": 0}
            ult.local["trace_ctx"] = ctx
        return ctx

    @staticmethod
    def _take_order(ctx: dict) -> int:
        order = ctx["next_order"]
        ctx["next_order"] = order + 1
        return order

    def _sample_t14_pvars(self, handle: "HGHandle") -> tuple:
        """The 9-tuple of t14 samples in trace-record order
        (TRACE_PVAR_INT_KEYS then the two handle timer PVARs)."""
        return tuple(r() for r in self._t14_readers) + (
            handle.pvar_get_or("input_serialization_time"),
            handle.pvar_get_or("origin_completion_callback_time"),
        )

    # -- origin hooks ----------------------------------------------------------------

    def on_forward(self, mi, handle, ult) -> None:
        if self.stage < Stage.STAGE1:
            return
        self.registry.register(handle.rpc_name)
        parent_code = ult.local.get("callpath", 0) if ult is not None else 0
        code = push(parent_code, handle.rpc_name)
        ctx = self._ctx(ult, mi, new_request=True)
        span_id = self.span_ids()
        parent_span = ult.local.get("span_id") if ult is not None else None
        lamport = mi.lamport_tick()
        order = self._take_order(ctx)

        header = handle.header
        header["callpath"] = code
        header["request_id"] = ctx["request_id"]
        header["order"] = ctx["next_order"]  # next value for the target
        header["lamport"] = lamport
        header["span_id"] = span_id
        header["parent_span_id"] = parent_span

        if ult is not None:
            # Origin execution time uses the ULT-local key strategy.
            ult.local[("t1", handle.cookie)] = mi.sim.now

        if self.stage >= Stage.STAGE2:
            rt = mi.rt
            self.trace.append_event(
                _K_ORIGIN_FORWARD,
                ctx["request_id"],
                order,
                lamport,
                mi.local_time(),
                mi.sim.now,
                handle.rpc_name,
                code,
                span_id,
                parent_span,
                header.get("provider_id", 0),
                rt.num_blocked,
                rt.num_ready,
                rt.num_running,
                mi.stats.cpu_utilization(),
                mi.stats.memory_bytes,
            )

    def on_forward_complete(self, mi, handle, ult, t1: float, t14: float) -> None:
        if self.stage < Stage.STAGE2:
            return
        header = handle.header
        code = header.get("callpath", 0)
        # Retrieve t1 through the ULT-local key, as the paper does.
        t1_local = (
            ult.local.pop(("t1", handle.cookie), t1) if ult is not None else t1
        )
        origin_exec = t14 - t1_local

        key = ProfileKey(
            callpath=code, origin=mi.addr, target=handle.target_addr
        )
        self.origin_profile.add(key, "origin_execution_time", origin_exec)

        lamport = mi.lamport_receive(header.get("lamport", 0))
        ctx = self._ctx(ult, mi)
        ctx["next_order"] = max(ctx["next_order"], header.get("order", 0))
        order = self._take_order(ctx)

        pvars: Optional[tuple] = None
        if self.stage >= Stage.FULL:
            pvars = self._sample_t14_pvars(handle)
            self.origin_profile.add(
                key, "input_serialization_time", pvars[-2]
            )
            self.origin_profile.add(
                key, "origin_completion_callback_time", pvars[-1]
            )

        rt = mi.rt
        self.trace.append_event(
            _K_ORIGIN_COMPLETE,
            ctx["request_id"],
            order,
            lamport,
            # The event belongs to t14 (the completion callback); the
            # hook itself runs when the caller ULT resumes, so map the
            # callback instant through the local clock explicitly.
            mi.clock.read(t14),
            t14,
            handle.rpc_name,
            code,
            header.get("span_id", 0),
            header.get("parent_span_id"),
            header.get("provider_id", 0),
            rt.num_blocked,
            rt.num_ready,
            rt.num_running,
            mi.stats.cpu_utilization(),
            mi.stats.memory_bytes,
            t1_local,
            origin_exec,
            # t11: when the response reached the origin endpoint CQ, so
            # the critical-path engine can split transit from origin-side
            # completion wait.  Falls back to t14 (zero wait) when the
            # mark is missing (e.g. failed-over handles).
            handle.marks.get("t11", t14),
            pvars=pvars,
        )

    def on_forward_timeout(self, mi, handle, ult, timeout: float) -> None:
        if self.stage < Stage.STAGE2 or self.trace is None:
            return
        ctx = self._ctx(ult, mi)
        self.trace.record_retry(
            mi.sim.now,
            ctx["request_id"],
            handle.rpc_name if handle is not None else "?",
            0,
            0.0,
            handle.target_addr if handle is not None else "?",
            "timeout",
        )

    def on_forward_retry(
        self, mi, handle, ult, attempt: int, delay: float, target: str
    ) -> None:
        if self.stage < Stage.STAGE2 or self.trace is None:
            return
        # The context still holds the failed attempt's request id (the
        # next attempt mints a fresh one in on_forward), so the backoff
        # is attributed to the attempt that failed.
        ctx = self._ctx(ult, mi)
        self.trace.record_retry(
            mi.sim.now,
            ctx["request_id"],
            handle.rpc_name if handle is not None else "?",
            attempt,
            delay,
            target,
            "retry",
        )

    # -- target hooks ---------------------------------------------------------------

    def on_handler_start(self, mi, handle, ult) -> None:
        if self.stage < Stage.STAGE1:
            return
        header = handle.header
        # Continue the distributed chain: downstream RPCs made by this ULT
        # extend the ancestry we received.
        ult.local["callpath"] = header.get("callpath", 0)
        ult.local["span_id"] = header.get("span_id")
        ult.local["trace_ctx"] = {
            "request_id": header.get("request_id", f"orphan-{handle.cookie}"),
            "next_order": header.get("order", 0),
            "inherited": True,
        }
        ult.local["child_rpc_time"] = 0.0
        lamport = mi.lamport_receive(header.get("lamport", 0))

        if self.stage < Stage.STAGE2:
            return
        t4 = handle.marks.get("t4", mi.sim.now)
        t5 = handle.marks.get("t5", mi.sim.now)
        # ULT-local key strategy for the handler-pool delay.
        ult.local["target_handler_time"] = t5 - t4
        ctx = ult.local["trace_ctx"]
        order = self._take_order(ctx)
        rt = mi.rt
        self.trace.append_event(
            _K_TARGET_ULT_START,
            ctx["request_id"],
            order,
            lamport,
            mi.local_time(),
            mi.sim.now,
            handle.rpc_name,
            header.get("callpath", 0),
            header.get("span_id", 0),
            header.get("parent_span_id"),
            header.get("provider_id", 0),
            rt.num_blocked,
            rt.num_ready,
            rt.num_running,
            mi.stats.cpu_utilization(),
            mi.stats.memory_bytes,
            t4,
            t5 - t4,
            # t_arrival: when the request reached the target endpoint CQ
            # (before progress picked it up); the internal-RDMA time is
            # carved out of [t_arrival, t4] by the critical-path engine.
            handle.marks.get("t_arrival", t4),
            handle.pvar_get_or("internal_rdma_transfer_time", 0.0),
        )

    def on_respond(self, mi, handle, ult) -> None:
        if self.stage < Stage.STAGE1:
            return
        header = handle.header
        lamport = mi.lamport_tick()
        header["lamport"] = lamport
        ctx = self._ctx(ult, mi)
        if self.stage >= Stage.STAGE2:
            t5 = handle.marks.get("t5", 0.0)
            t8 = handle.marks["t8"]
            exec_incl = t8 - t5
            exec_excl = exec_incl - ult.local.get("child_rpc_time", 0.0)
            ult.local["target_execution_time"] = exec_incl
            ult.local["target_execution_time_exclusive"] = exec_excl
            order = self._take_order(ctx)
            header["order"] = ctx["next_order"]
            rt = mi.rt
            self.trace.append_event(
                _K_TARGET_RESPOND,
                ctx["request_id"],
                order,
                lamport,
                mi.local_time(),
                mi.sim.now,
                handle.rpc_name,
                header.get("callpath", 0),
                header.get("span_id", 0),
                header.get("parent_span_id"),
                header.get("provider_id", 0),
                rt.num_blocked,
                rt.num_ready,
                rt.num_running,
                mi.stats.cpu_utilization(),
                mi.stats.memory_bytes,
                t8,
                exec_incl,
                exec_excl,
                handle.pvar_get_or("bulk_transfer_time", 0.0),
            )
        else:
            header["order"] = ctx["next_order"]

    def on_handler_end(self, mi, handle, ult) -> None:
        if self.stage < Stage.STAGE2:
            return
        header = handle.header
        code = header.get("callpath", 0)
        key = ProfileKey(
            callpath=code, origin=handle.origin_addr, target=mi.addr
        )
        t8 = handle.marks["t8"]
        t13 = handle.marks.get("t13", t8)
        prof = self.target_profile
        prof.add(key, "target_handler_time", ult.local.get("target_handler_time", 0.0))
        prof.add(key, "target_execution_time", ult.local.get("target_execution_time", 0.0))
        prof.add(
            key,
            "target_execution_time_exclusive",
            ult.local.get("target_execution_time_exclusive", 0.0),
        )
        # ULT-local key strategy: t8 -> t13.
        prof.add(key, "target_completion_callback_time", t13 - t8)
        if self.stage >= Stage.FULL:
            for name in _TARGET_HANDLE_PVARS:
                value = handle.pvar_get_or(name, None)
                if value is not None:
                    prof.add(key, name, value)
