"""Cluster-scale sharded-service experiment (mubench-style matrix).

The single-server harnesses answer micro questions; this one exercises
the *sharded* deployment path at fleet scale: a
:class:`~repro.shard.ShardedKVService` with dozens of server processes,
consistent-hash placement, heartbeat membership, and monitor-attached
hot-spot rebalancing, swept over the mubench-style matrix of

* **topology** — ``flat`` (one server per simulated node) vs ``packed``
  (four servers per node),
* **scale** — fleet sizes (32+ servers),
* **load** — keys issued per client.

Every cell runs the same script: clients spray keys through
:class:`~repro.shard.ShardRouter`, hammer one deliberately hot key until
the monitor's hot-spot detector fires a rebalance, then a fault-injected
crash kills one server mid-run — the membership service evicts it, the
SSG epoch advances, and failover migrations re-home its shards — and a
second write wave lands on the post-churn placement.  The cell then
audits conservation (:func:`~repro.shard.run_churn_audit`) and renders
the Perfetto timeline with the shard-migration lane.

Everything is deterministic: ``run_scale_experiment(seed=S).report()``
— including every artifact digest — is byte-identical across runs of
the same ``S``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster
from ..faults import CrashFault, FaultPlan
from ..margo import MargoError, RetryPolicy
from ..shard import (
    ChurnReport,
    ShardedKVService,
    make_hotspot_detector_factory,
    run_churn_audit,
)
from ..symbiosys import Stage
from ..symbiosys.export import write_text
from ..symbiosys.monitor import MonitorConfig
from ..symbiosys.perfetto import chrome_trace_json

__all__ = [
    "ScaleCell",
    "ScaleCellResult",
    "ScaleExperimentResult",
    "run_scale_cell",
    "run_scale_experiment",
    "smoke_cell",
]

#: Topology axis: servers per simulated node.
TOPOLOGIES = {"flat": 1, "packed": 4}

_CRASH_AT = 0.8e-3
_POST_WAVE_AT = 2.0e-3
_QUIESCE = 2e-3


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _scale_retry() -> RetryPolicy:
    """Client policy sized to ride out the mid-run crash."""
    return RetryPolicy(
        max_attempts=4,
        timeout=0.5e-3,
        backoff=0.1e-3,
        backoff_factor=2.0,
        max_backoff=1e-3,
    )


@dataclass(frozen=True)
class ScaleCell:
    """One cell of the topology x scale x load matrix."""

    topology: str
    n_servers: int
    n_clients: int
    keys_per_client: int

    @property
    def name(self) -> str:
        return (
            f"{self.topology}-{self.n_servers}s"
            f"-{self.n_clients}c-{self.keys_per_client}k"
        )

    @property
    def servers_per_node(self) -> int:
        return TOPOLOGIES[self.topology]


def smoke_cell() -> ScaleCell:
    """The CI smoke shape: one >= 32-server flat topology cell."""
    return ScaleCell(
        topology="flat", n_servers=32, n_clients=4, keys_per_client=25
    )


def default_matrix() -> list[ScaleCell]:
    """The full mubench-style sweep."""
    cells = []
    for topology in sorted(TOPOLOGIES):
        for n_servers in (32, 64):
            for keys in (25, 50):
                cells.append(
                    ScaleCell(
                        topology=topology,
                        n_servers=n_servers,
                        n_clients=4,
                        keys_per_client=keys,
                    )
                )
    return cells


@dataclass
class ScaleCellResult:
    """One sharded cell: churn outcome, telemetry, and artifacts."""

    cell: ScaleCell
    seed: int
    victim: str
    makespan: float
    epoch: int
    n_shards: int
    issued: int
    acked: int
    failed: int
    failovers: int
    handoffs: int
    rebalances: int
    redirects: int
    lost_shards: int
    total_items: int
    bytes_stored: int
    audit: ChurnReport = field(default=None)  # type: ignore[assignment]
    membership_events: list[tuple] = field(default_factory=list)
    perfetto_json: str = ""

    def digests(self) -> dict[str, str]:
        return {"perfetto": _digest(self.perfetto_json)}

    def check_invariants(self) -> None:
        """The acceptance gate: the death produced a view change and a
        completed, exported migration, and nothing was silently lost."""
        if self.epoch < 1:
            raise AssertionError("no SSG view change recorded")
        if self.failovers < 1:
            raise AssertionError("node death produced no failover migration")
        if self.rebalances < 1:
            raise AssertionError("hot-spot detector fired no rebalance")
        if not self.audit.ok:
            raise AssertionError(
                f"churn audit failed: {self.audit.as_dict()}"
            )
        if '"name": "shard migrations"' not in self.perfetto_json:
            raise AssertionError("Perfetto export lacks the migration lane")

    def row(self) -> dict:
        return {
            "cell": self.cell.name,
            "epoch": self.epoch,
            "acked": f"{self.acked}/{self.issued}",
            "failover": self.failovers,
            "handoff": self.handoffs,
            "rebalance": self.rebalances,
            "redirects": self.redirects,
            "lost": self.lost_shards,
            "items": self.total_items,
            "audit": "ok" if self.audit.ok else "FAIL",
        }


@dataclass
class ScaleExperimentResult:
    """The swept matrix plus per-cell artifacts."""

    seed: int
    cells: list[ScaleCellResult] = field(default_factory=list)

    def check_invariants(self) -> None:
        for cell in self.cells:
            cell.check_invariants()

    def write_artifacts(self, out_dir) -> list[str]:
        import os

        os.makedirs(out_dir, exist_ok=True)
        paths = []
        for result in self.cells:
            path = os.path.join(
                out_dir, f"scale-{result.cell.name}.perfetto.json"
            )
            write_text(path, result.perfetto_json)
            paths.append(path)
        return paths

    def report(self) -> str:
        """Deterministic plain-text report (byte-identical per seed)."""
        from .reporting import ascii_table

        lines = [
            f"sharded scale matrix (seed={self.seed}, "
            f"{len(self.cells)} cells)",
            ascii_table([r.row() for r in self.cells]),
        ]
        for result in self.cells:
            a = result.audit
            lines.append(
                f"  {result.cell.name}: victim={result.victim} "
                f"makespan={result.makespan * 1e3:.6f} ms "
                f"shards={result.n_shards} "
                f"bytes={result.bytes_stored} "
                f"lost_allowed={a.lost_allowed} "
                f"migrated_bytes={a.migrated_bytes}"
            )
            for name, digest in sorted(result.digests().items()):
                lines.append(f"    {name:<12} {digest}")
        return "\n".join(lines)


def run_scale_cell(
    cell: ScaleCell,
    *,
    seed: int = 0,
    store=None,
    time_limit: float = 600.0,
) -> ScaleCellResult:
    """Run one matrix cell end to end.

    The victim server is fixed (``kv001``) so the fault plan can be
    built before deployment; the hot key is chosen after deployment as
    the first candidate whose owner is a different, multi-shard server
    (so the detector has somewhere cooler to move it).
    """
    victim = "kv001"
    plan = FaultPlan(
        name=f"scale-kill-{victim}",
        process_faults=[CrashFault(addr=victim, at=_CRASH_AT)],
    )
    with Cluster(
        seed=seed,
        stage=Stage.FULL,
        fault_plan=plan,
        retry=_scale_retry(),
        monitoring=MonitorConfig(interval=50e-6),
        store=store,
        run_name=f"scale-{cell.name}-seed{seed}",
        run_tags={
            "experiment": "scale",
            "topology": cell.topology,
            "n_servers": str(cell.n_servers),
            "n_clients": str(cell.n_clients),
            "keys_per_client": str(cell.keys_per_client),
        },
    ) as cluster:
        service = ShardedKVService.deploy(
            cluster,
            cell.n_servers,
            servers_per_node=cell.servers_per_node,
        )
        detector = make_hotspot_detector_factory(
            service.manager,
            service.providers,
            min_window_ops=8,
            hot_fraction=0.4,
            cooldown=10.0,
        )(cluster.monitor.config)
        cluster.monitor.detectors.append(detector)

        manager = service.manager
        hot_key = next(
            k
            for k in (f"hot{i}" for i in range(10_000))
            if (owner := manager.map.owner_of_key(k)) != victim
            and len(service.providers[owner].shards) >= 2
        )

        expected: dict[str, str] = {}
        acked: set[str] = set()
        pending = {"n": cell.n_clients}
        done = cluster.sim.event("scale-done")

        def body(c, router):
            def tracked_put(key, value):
                expected[key] = value
                try:
                    yield from router.put(key, value)
                    acked.add(key)
                except (MargoError, LookupError):
                    pass

            for i in range(cell.keys_per_client):
                yield from tracked_put(f"c{c:02d}k{i:04d}", f"v{c}.{i}" * 4)
            # Hammer one hot key so the detector fires a rebalance (all
            # clients write the same value, so the put is idempotent).
            yield from tracked_put(hot_key, "hot")
            for _ in range(60):
                try:
                    yield from router.get(hot_key)
                except (MargoError, LookupError):
                    pass
            # Outlive the crash, then write a post-churn wave.
            yield from router.mi.rt.sleep(
                max(1e-9, _POST_WAVE_AT - cluster.sim.now)
            )
            for i in range(cell.keys_per_client):
                yield from tracked_put(f"c{c:02d}p{i:04d}", f"w{c}.{i}" * 4)
            pending["n"] -= 1
            if pending["n"] == 0:
                done.succeed(cluster.sim.now)

        for c in range(cell.n_clients):
            mi = cluster.process(f"scli{c:02d}", f"cnode{c:02d}")
            mi.client_ult(body(c, service.make_router(mi)), name=f"load{c}")
        if not cluster.run_until_event(done, limit=time_limit):
            raise RuntimeError(f"scale cell {cell.name} did not finish")
        makespan = done.value
        cluster.run(until=cluster.sim.now + _QUIESCE)

    audit = run_churn_audit(service, expected, acked)
    records = [r for r in manager.records if r.ok]
    redirects = sum(
        int(service.providers[a].mi.hg.pvars.raw_value(
            "shard_redirects_total"
        ))
        for a in service.servers
    )
    return ScaleCellResult(
        cell=cell,
        seed=seed,
        victim=victim,
        makespan=makespan,
        epoch=service.group.epoch,
        n_shards=service.n_shards,
        issued=audit.issued,
        acked=audit.acked,
        failed=audit.failed,
        failovers=sum(1 for r in records if r.kind == "failover"),
        handoffs=sum(1 for r in records if r.kind == "handoff"),
        rebalances=sum(1 for r in records if r.kind == "rebalance"),
        redirects=redirects,
        lost_shards=len(manager.lost_shards),
        total_items=service.total_items(),
        bytes_stored=service.bytes_stored(),
        audit=audit,
        membership_events=list(service.membership.events),
        perfetto_json=chrome_trace_json(
            monitor=cluster.monitor,
            collector=cluster.collector,
            fault_events=cluster.fault_events(),
            migrations=manager.records,
        ),
    )


def run_scale_experiment(
    *,
    seed: int = 0,
    cells: Optional[list[ScaleCell]] = None,
    store=None,
    out_dir=None,
) -> ScaleExperimentResult:
    """Sweep the matrix (or the given cells) from one seed."""
    cells = cells if cells is not None else default_matrix()
    result = ScaleExperimentResult(seed=seed)
    for cell in cells:
        result.cells.append(run_scale_cell(cell, seed=seed, store=store))
    if out_dir is not None:
        result.write_artifacts(out_dir)
    return result
