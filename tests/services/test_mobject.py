"""Tests for the composed Mobject service."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.mobject import MobjectClient, MobjectProviderNode
from repro.sim import Simulator
from repro.symbiosys import Stage, SymbiosysCollector, push


def make_mobject_world(stage=None, n_handler_es=4):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(stage) if stage is not None else None

    node = MobjectProviderNode(
        sim,
        fabric,
        "mobj0",
        "n0",
        n_handler_es=n_handler_es,
        instrumentation=collector.create_instrumentation() if collector else None,
    )
    client_mi = MargoInstance(
        sim,
        fabric,
        "cli",
        "n0",  # colocated, like the paper's ior setup
        instrumentation=collector.create_instrumentation() if collector else None,
    )
    client = MobjectClient(client_mi)
    return sim, node, client_mi, client, collector


def run_body(sim, client_mi, gen, until=5.0):
    done = {}

    def wrapper():
        done["result"] = (yield from gen)

    client_mi.client_ult(wrapper())
    sim.run_until(lambda: "result" in done, limit=until)
    assert "result" in done, "mobject op did not complete"
    return done["result"]


def test_write_then_read_roundtrip():
    sim, node, client_mi, client, _ = make_mobject_world()
    data = b"object-payload" * 100

    def body():
        ret = yield from client.write_op("mobj0", "oid-1", data)
        got = yield from client.read_op("mobj0", "oid-1")
        return ret, got

    ret, got = run_body(sim, client_mi, body())
    assert ret == 0
    assert got == data


def test_read_missing_object_returns_none():
    sim, node, client_mi, client, _ = make_mobject_world()

    def body():
        got = yield from client.read_op("mobj0", "ghost")
        return got

    assert run_body(sim, client_mi, body()) is None


def test_write_op_issues_twelve_discrete_calls():
    """The write path fans out into exactly 12 SDSKV/BAKE RPCs (Fig 5)."""
    sim, node, client_mi, client, collector = make_mobject_world(Stage.STAGE2)

    def body():
        yield from client.write_op("mobj0", "oid-x", b"d" * 256)

    run_body(sim, client_mi, body())
    from repro.symbiosys import EventKind

    events = collector.all_events()
    root_code = push(0, "mobject_write_op")
    nested_forwards = [
        e
        for e in events
        if e.kind is EventKind.ORIGIN_FORWARD and e.callpath != root_code
    ]
    assert len(nested_forwards) == 12
    # All nested calls chain under the write op.
    for ev in nested_forwards:
        assert (ev.callpath >> 16) == root_code


def test_write_op_nested_call_mix():
    sim, node, client_mi, client, collector = make_mobject_world(Stage.STAGE2)

    def body():
        yield from client.write_op("mobj0", "oid-y", b"d" * 64)

    run_body(sim, client_mi, body())
    from repro.symbiosys import EventKind

    names = [
        e.rpc_name
        for e in collector.all_events()
        if e.kind is EventKind.ORIGIN_FORWARD and e.rpc_name != "mobject_write_op"
    ]
    assert names.count("sdskv_put_rpc") == 5
    assert names.count("sdskv_get_rpc") == 2
    assert names.count("sdskv_exists_rpc") == 1
    assert names.count("bake_create_rpc") == 1
    assert names.count("bake_write_rpc") == 1
    assert names.count("bake_persist_rpc") == 1
    assert names.count("bake_get_size_rpc") == 1
    assert len(names) == 12


def test_read_op_uses_list_keyvals():
    sim, node, client_mi, client, collector = make_mobject_world(Stage.STAGE2)

    def body():
        yield from client.write_op("mobj0", "oid-z", b"abc" * 50)
        yield from client.read_op("mobj0", "oid-z")

    run_body(sim, client_mi, body())
    from repro.symbiosys import EventKind

    read_code = push(0, "mobject_read_op")
    read_children = [
        e.rpc_name
        for e in collector.all_events()
        if e.kind is EventKind.ORIGIN_FORWARD
        and (e.callpath >> 16) == read_code
    ]
    assert "sdskv_list_keyvals_rpc" in read_children
    assert "bake_read_rpc" in read_children


def test_multiple_writes_accumulate_extents():
    sim, node, client_mi, client, _ = make_mobject_world()

    def body():
        for i in range(3):
            yield from client.write_op("mobj0", "multi", b"x" * 64, offset=i * 64)
        got = yield from client.read_op("mobj0", "multi")
        return got

    got = run_body(sim, client_mi, body())
    assert got == b"x" * 64  # newest extent
    assert node.sdskv.total_items > 5


def test_concurrent_clients_all_complete():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    node = MobjectProviderNode(sim, fabric, "mobj0", "n0", n_handler_es=4)
    results = []
    for rank in range(6):
        mi = MargoInstance(sim, fabric, f"cli{rank}", "n0")
        cl = MobjectClient(mi)

        def body(c=cl, r=rank):
            ret = yield from c.write_op("mobj0", f"o{r}", b"p" * 128)
            results.append(ret)

        mi.client_ult(body())
    sim.run_until(lambda: len(results) == 6, limit=5.0)
    assert results == [0] * 6
