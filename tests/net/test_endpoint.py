"""Tests for endpoint completion-queue semantics (cq_read / arm)."""

import pytest

from repro.net import CQEntry, CQKind, Endpoint
from repro.sim import Simulator


def entry(tag):
    return CQEntry(kind=CQKind.RECV, payload=tag)


def test_cq_read_respects_max_events():
    """cq_read caps its batch at max_events -- the OFI_max_events bound
    whose breach pattern is Figure 12."""
    sim = Simulator()
    ep = Endpoint(sim, "x")
    for i in range(40):
        ep.push(entry(i))
    batch = ep.cq_read(16)
    assert len(batch) == 16
    assert [e.payload for e in batch] == list(range(16))
    assert ep.cq_depth == 24


def test_cq_read_returns_fewer_when_queue_short():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    ep.push(entry("only"))
    assert len(ep.cq_read(16)) == 1
    assert ep.cq_read(16) == []


def test_cq_read_rejects_nonpositive_max():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    with pytest.raises(ValueError):
        ep.cq_read(0)


def test_cq_high_watermark_tracks_backlog():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    for i in range(10):
        ep.push(entry(i))
    ep.cq_read(8)
    for i in range(3):
        ep.push(entry(i))
    assert ep.cq_high_watermark == 10
    assert ep.total_enqueued == 13
    assert ep.total_read == 8


def test_arm_fires_on_next_push():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    fired = []
    ep.arm(lambda: fired.append("a"))
    assert fired == []
    ep.push(entry(1))
    assert fired == ["a"]
    # One-shot: further pushes do not re-fire.
    ep.push(entry(2))
    assert fired == ["a"]


def test_arm_fires_immediately_when_nonempty():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    ep.push(entry(1))
    fired = []
    ep.arm(lambda: fired.append("now"))
    assert fired == ["now"]


def test_arm_multiple_waiters_all_fire():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    fired = []
    ep.arm(lambda: fired.append("a"))
    ep.arm(lambda: fired.append("b"))
    ep.push(entry(1))
    assert fired == ["a", "b"]


def test_disarm_withdraws_callback():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    fired = []
    disarm = ep.arm(lambda: fired.append("x"))
    disarm()
    ep.push(entry(1))
    assert fired == []


def test_disarm_after_fire_is_harmless():
    sim = Simulator()
    ep = Endpoint(sim, "x")
    fired = []
    disarm = ep.arm(lambda: fired.append("x"))
    ep.push(entry(1))
    disarm()
    assert fired == ["x"]
