"""Distributed request tracing (paper §IV-A-2).

Trace events are generated at t1 and t14 on the origin and t5 and t8 on
the target of every RPC.  Each event carries:

* the globally unique *request id* minted by the end client,
* a per-request *order* counter propagated with the request,
* the process's *Lamport clock* (used by the stitcher to correct skewed
  local timestamps),
* the local (possibly drifted) wall-clock timestamp,
* a *span id* / *parent span id* pair for Zipkin-style visualizations,
* sampled PVAR values and OS/tasking statistics.

Events are buffered per process and consolidated by the analysis layer
after the run.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "EventKind",
    "FaultAnnotation",
    "SpanIdAllocator",
    "TraceBuffer",
    "TraceEvent",
]


class SpanIdAllocator:
    """Run-scoped span-id source.

    One allocator is owned by each
    :class:`~repro.symbiosys.collector.SymbiosysCollector`, so span ids
    restart from 1 for every run and same-seed runs produce identical
    ids.  (A module-global ``itertools.count`` here used to leak ids
    across consecutive runs in one interpreter, which broke byte-level
    determinism of every export containing span ids.)
    """

    def __init__(self, start: int = 1):
        self._ids = itertools.count(start)

    def __call__(self) -> int:
        return next(self._ids)


class EventKind(enum.Enum):
    ORIGIN_FORWARD = "origin_forward"  # t1
    ORIGIN_COMPLETE = "origin_complete"  # t14
    TARGET_ULT_START = "target_ult_start"  # t5
    TARGET_RESPOND = "target_respond"  # t8


@dataclass
class TraceEvent:
    """One point event in a distributed request trace."""

    kind: EventKind
    request_id: str
    order: int
    lamport: int
    process: str
    local_ts: float  # local clock (subject to drift/offset)
    true_ts: float  # simulator truth, kept for validation only
    rpc_name: str
    callpath: int
    span_id: int
    parent_span_id: Optional[int]
    provider_id: int = 0
    #: Extra measurements attached at the event (t4 spawn time, etc.).
    data: dict[str, Any] = field(default_factory=dict)
    #: PVAR samples fused into the trace record (FULL stage only).
    pvars: dict[str, Any] = field(default_factory=dict)
    #: OS / tasking-layer statistics (blocked ULTs, CPU, memory).
    sysstats: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultAnnotation:
    """One injected fault recorded into a process's trace stream.

    Written by the :class:`~repro.faults.FaultInjector` for every
    process a fired fault touches, so the trace analysis can attribute
    latency spikes to injected faults instead of mislabelling them as
    emergent queueing.
    """

    time: float
    kind: str
    #: Deterministic identifying details (addresses, rpc names) -- the
    #: same tuple the injector's own event trace records.
    detail: tuple = ()

    def describe(self) -> str:
        detail_s = " ".join(str(d) for d in self.detail)
        return f"fault:{self.kind} {detail_s}".rstrip()


class TraceBuffer:
    """Per-process accumulation of trace events and fault annotations."""

    def __init__(self, process: str):
        self.process = process
        self.events: list[TraceEvent] = []
        #: Injected faults that touched this process, in firing order.
        self.annotations: list[FaultAnnotation] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def annotate(self, time: float, kind: str, detail: tuple = ()) -> None:
        """Record one injected fault (duck-called by the injector, so
        the faults layer needs no import of this module)."""
        self.annotations.append(FaultAnnotation(time, kind, tuple(detail)))

    def __len__(self) -> int:
        return len(self.events)

    def by_request(self) -> dict[str, list[TraceEvent]]:
        out: dict[str, list[TraceEvent]] = {}
        for ev in self.events:
            out.setdefault(ev.request_id, []).append(ev)
        return out
