"""Instrumentation hook interface between Margo and SYMBIOSYS.

Margo is "the ideal software layer to host the performance measurement
system" (paper §IV-A): every RPC passes through it on both sides.  The
hooks below are the exact interception points SYMBIOSYS uses.  The
default :class:`NullInstrumentation` does nothing (the overhead study's
*Baseline*); :class:`repro.symbiosys.instrument.SymbiosysInstrumentation`
implements the real behaviour at the configured stage.

Hook call sites and their Figure 2 timestamps:

* ``on_forward``           -- origin, t1, caller ULT, before the post
* ``on_forward_complete``  -- origin, t14, caller ULT, after the response
* ``on_handler_start``     -- target, t5, handler ULT first instruction
* ``on_respond``           -- target, t8, handler ULT entering respond
* ``on_handler_end``       -- target, after t13, handler ULT about to exit
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..argobots import ULT
    from ..mercury import HGHandle
    from .instance import MargoInstance

__all__ = ["NullInstrumentation"]


class NullInstrumentation:
    """No-op hooks: instrumentation and measurement fully disabled."""

    def attach(self, mi: "MargoInstance") -> None:
        """Called once by MargoInstance at construction."""

    def on_forward(
        self, mi: "MargoInstance", handle: "HGHandle", ult: Optional["ULT"]
    ) -> None:
        """Origin, t1.  May write request metadata into ``handle.header``."""

    def on_forward_complete(
        self,
        mi: "MargoInstance",
        handle: "HGHandle",
        ult: Optional["ULT"],
        t1: float,
        t14: float,
    ) -> None:
        """Origin, t14.  The full origin execution interval is [t1, t14]."""

    def on_handler_start(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, t5.  ``handle.marks['t4']`` holds the spawn time."""

    def on_respond(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, t8, just before the response is serialized."""

    def on_handler_end(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, after the response-sent callback (t13 in marks)."""
