"""Offline analysis scripts: profile, trace, and system summaries."""

from .plots import gantt, scatter, timeseries
from .profile_summary import CallpathRow, ProfileSummary, profile_summary
from .system_summary import ProcessSystemStats, SystemSummary, system_summary
from .trace_summary import (
    RequestTrace,
    Span,
    TraceSummary,
    blocked_ult_samples,
    estimate_clock_offsets,
    ofi_events_series,
    stitch_traces,
    trace_summary,
)

__all__ = [
    "CallpathRow",
    "ProcessSystemStats",
    "ProfileSummary",
    "RequestTrace",
    "Span",
    "SystemSummary",
    "TraceSummary",
    "blocked_ult_samples",
    "estimate_clock_offsets",
    "gantt",
    "ofi_events_series",
    "profile_summary",
    "scatter",
    "stitch_traces",
    "system_summary",
    "timeseries",
    "trace_summary",
]
