"""Seeded, seq-numbered inter-LP boundary channels.

A cross-LP message leaves its origin fabric as a
:class:`BoundaryEvent`: the sender stamps it with the simulated send
and receive times plus a per-LP sequence number (assigned in send
order when the outbox is drained at the end of a window).  The kernel
routes events between LPs and every receiver injects its inbound batch
in the *canonical order* ``(recv_ts, src_lp, seq)`` -- the same total
order regardless of how many OS processes carried the LPs, which is
what makes the parallel schedule byte-identical to the serial one.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class BoundaryEvent:
    """One cross-LP message crossing a window barrier."""

    src_lp: int
    dst_lp: int
    seq: int
    send_ts: float
    recv_ts: float
    msg: Any  # repro.net.Message -- kept loose so channel stays import-light

    def sort_key(self) -> tuple[float, int, int]:
        return (self.recv_ts, self.src_lp, self.seq)


def inbound_order(events: list[BoundaryEvent]) -> list[BoundaryEvent]:
    """Canonical injection order for one LP's inbound batch."""

    return sorted(events, key=BoundaryEvent.sort_key)


def pickle_roundtrip(events: list[BoundaryEvent]) -> list[BoundaryEvent]:
    """Copy events through pickle, exactly as a process pipe would.

    The in-process (serial) executor routes boundary events through
    this so both executors hand the receiver a private copy: a handler
    that mutated a request payload in place would otherwise alias the
    sender's object in serial mode but not in multiprocessing mode,
    and the two schedules could diverge.  It also surfaces
    unpicklable payloads in serial runs, long before anyone reaches
    for ``--workers``.
    """

    if not events:
        return events
    return pickle.loads(pickle.dumps(events))
