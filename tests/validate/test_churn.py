"""Membership-churn fuzz campaigns: conservation + determinism."""

import json

import numpy as np

from repro.faults import FaultPlan
from repro.validate.churn import (
    ChurnConfig,
    check_churn_config,
    churn_sweep,
    random_churn_plan,
    run_churn_campaign,
)
from repro.validate.workloads import WORKLOAD_SERVERS


def test_random_churn_plan_targets_fleet_and_round_trips():
    rng = np.random.default_rng(42)
    plan = random_churn_plan(rng)
    assert plan.process_faults
    addrs = {f.addr for f in plan.process_faults}
    assert addrs <= set(WORKLOAD_SERVERS["sharded"])
    assert len(addrs) < len(WORKLOAD_SERVERS["sharded"])  # one survivor
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plan_free_campaign_conserves_everything():
    outcome = run_churn_campaign(ChurnConfig(seed=1))
    assert outcome.audit["ok"]
    assert outcome.audit["failed"] == 0
    assert outcome.audit["lost_allowed"] == 0
    assert outcome.audit["missing"] == 0
    assert outcome.migrations["completed"] == 0


def test_kill_revive_campaign_audits_clean_and_deterministic():
    rng = np.random.default_rng(7)
    config = ChurnConfig(seed=7, plan=random_churn_plan(rng))
    assert check_churn_config(config) is None
    # The audit accounts every issued request explicitly.
    outcome = run_churn_campaign(config)
    audit = outcome.audit
    assert audit["issued"] == audit["acked"] + audit["failed"]
    assert audit["missing"] == 0 and audit["corrupted"] == 0


def test_sweep_writes_repro_on_failure(tmp_path, monkeypatch):
    # Force a failure to exercise the repro path without a real bug.
    import repro.validate.churn as churn_mod

    monkeypatch.setattr(
        churn_mod,
        "check_churn_config",
        lambda config, time_limit=5.0: "conservation: forced",
    )
    repro_file = tmp_path / "churn-repro.json"
    result = churn_mod.churn_sweep(
        seeds=[3], repro_path=str(repro_file), log=lambda s: None
    )
    assert not result.ok and repro_file.exists()
    payload = json.loads(repro_file.read_text())
    assert payload["kind"] == "conservation"
    replayed = ChurnConfig.from_dict(payload["config"])
    assert replayed.seed == 3


def test_config_json_round_trip():
    rng = np.random.default_rng(11)
    config = ChurnConfig(
        seed=11, n_clients=3, keys_per_client=9, plan=random_churn_plan(rng)
    )
    assert ChurnConfig.from_dict(config.to_dict()) == config


def test_small_sweep_is_clean():
    result = churn_sweep(seeds=range(2), log=lambda s: None)
    assert result.ok and result.configs_run == 2
