"""Overhead evaluation harness (Figure 13 and Table V).

Figure 13 measures the *instrumentation* overhead: the same HEPnOS
data-loader run at Baseline / Stage 1 / Stage 2 / Full Support, averaged
over several repetitions.  In this reproduction the simulated workload
timeline is identical across stages by construction (instrumentation
adds no simulated cost, as the paper found its overhead indistinguishable
from run-to-run variation); what the stages *do* change is the real
Python work performed by the measurement layer, so we report wall-clock
execution time per stage -- the honest analogue of the paper's metric --
alongside the simulated makespan as a sanity check.

Table V measures the offline analysis scripts (profile / trace / system
summaries) over the collected data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from typing import Optional

from ..symbiosys import Stage
from ..symbiosys.analysis import profile_summary, system_summary, trace_summary
from ..symbiosys.monitor import MonitorConfig
from .configs import HEPnOSConfig, TABLE_IV
from .hepnos import HEPnOSExperimentResult
from .presets import THETA_KNL, Preset
from .runner import map_cells, overhead_cell

__all__ = [
    "StageTiming",
    "OverheadStudyResult",
    "AnalysisTimings",
    "run_overhead_study",
    "time_analysis_scripts",
    "OVERHEAD_STAGES",
]

OVERHEAD_STAGES = (Stage.OFF, Stage.STAGE1, Stage.STAGE2, Stage.FULL)

_STAGE_LABELS = {
    Stage.OFF: "Baseline",
    Stage.STAGE1: "Stage 1",
    Stage.STAGE2: "Stage 2",
    Stage.FULL: "Full Support",
}


@dataclass
class StageTiming:
    stage: Stage
    wall_times: list[float] = field(default_factory=list)
    sim_makespans: list[float] = field(default_factory=list)
    trace_events: int = 0
    #: Overrides the stage label (used by the monitoring arm).
    label_override: Optional[str] = None

    @property
    def label(self) -> str:
        if self.label_override is not None:
            return self.label_override
        return _STAGE_LABELS[self.stage]

    @property
    def mean_wall(self) -> float:
        return sum(self.wall_times) / len(self.wall_times)

    @property
    def mean_makespan(self) -> float:
        return sum(self.sim_makespans) / len(self.sim_makespans)


@dataclass
class OverheadStudyResult:
    timings: dict[Stage, StageTiming]
    #: The Full-Support run repeated with the online monitor attached
    #: (``run_overhead_study(monitoring=...)``); None otherwise.
    monitored: Optional[StageTiming] = None

    def overhead_vs_baseline(self, stage: Stage) -> float:
        """Relative wall-clock overhead of ``stage`` over Baseline."""
        base = self.timings[Stage.OFF].mean_wall
        return (self.timings[stage].mean_wall - base) / base if base > 0 else 0.0

    def monitoring_sim_overhead(self) -> float:
        """Relative *simulated-time* overhead of monitoring over the
        un-monitored Full Support run (0.0 by construction: the sampler
        is a pure observer and adds no simulated cost)."""
        if self.monitored is None:
            raise ValueError("study was run without a monitoring arm")
        base = self.timings[Stage.FULL].mean_makespan
        if base <= 0:
            return 0.0
        return (self.monitored.mean_makespan - base) / base

    def rows(self) -> list[dict]:
        out = []
        for stage in OVERHEAD_STAGES:
            t = self.timings[stage]
            out.append(
                {
                    "stage": t.label,
                    "mean_wall_s": t.mean_wall,
                    "mean_sim_makespan_s": t.mean_makespan,
                    "trace_events": t.trace_events,
                    "overhead_vs_baseline": self.overhead_vs_baseline(stage),
                }
            )
        if self.monitored is not None:
            t = self.monitored
            out.append(
                {
                    "stage": t.label,
                    "mean_wall_s": t.mean_wall,
                    "mean_sim_makespan_s": t.mean_makespan,
                    "trace_events": t.trace_events,
                    "overhead_vs_baseline": (
                        (t.mean_wall - self.timings[Stage.OFF].mean_wall)
                        / self.timings[Stage.OFF].mean_wall
                        if self.timings[Stage.OFF].mean_wall > 0
                        else 0.0
                    ),
                }
            )
        return out


def run_overhead_study(
    *,
    config: HEPnOSConfig = None,
    repetitions: int = 5,
    events_per_client: int = 1024,
    preset: Preset = THETA_KNL,
    stages=OVERHEAD_STAGES,
    monitoring: Optional[MonitorConfig] = None,
    jobs: int = 1,
) -> OverheadStudyResult:
    """Figure 13: repeat the data-loader run at each instrumentation
    stage and time it.

    ``monitoring`` adds a fifth arm: Full Support with the online
    monitor attached, so the telemetry layer's cost shows up next to the
    instrumentation stages (its *simulated* overhead must be ~0).

    ``jobs > 1`` fans the (stage, repetition) cells across worker
    processes.  Simulated quantities (makespans, trace counts) are
    unaffected; the per-cell *wall* times then include scheduling
    contention, so keep ``jobs=1`` when the wall-clock columns matter.
    """
    if config is None:
        # The paper's overhead study used a dedicated large-scale setup;
        # C2's shape (32 clients, 4 servers) is the closest Table IV row.
        config = TABLE_IV["C2"]
    if repetitions < 1:
        raise ValueError("repetitions must be positive")

    def cell(stage: Stage, rep: int, mon: Optional[MonitorConfig]) -> dict:
        return {
            "config": config,
            "events_per_client": events_per_client,
            "stage": stage,
            "preset": preset,
            "seed": 1000 + rep,
            "monitoring": mon,
        }

    cells = [
        cell(stage, rep, None)
        for stage in stages
        for rep in range(repetitions)
    ]
    if monitoring is not None:
        cells.extend(
            cell(Stage.FULL, rep, monitoring) for rep in range(repetitions)
        )
    outs = iter(map_cells(overhead_cell, cells, jobs=jobs))

    def merge(timing: StageTiming) -> StageTiming:
        for _ in range(repetitions):
            out = next(outs)
            timing.wall_times.append(out["wall"])
            timing.sim_makespans.append(out["makespan"])
            timing.trace_events = max(
                timing.trace_events, out["trace_events"]
            )
        return timing

    timings = {stage: merge(StageTiming(stage=stage)) for stage in stages}
    monitored: Optional[StageTiming] = None
    if monitoring is not None:
        monitored = merge(
            StageTiming(stage=Stage.FULL, label_override="Full + monitor")
        )
    return OverheadStudyResult(timings=timings, monitored=monitored)


@dataclass
class AnalysisTimings:
    """Table V: analysis script runtimes over one run's data."""

    profile_summary_s: float
    trace_summary_s: float
    system_summary_s: float
    trace_events: int

    def rows(self) -> list[dict]:
        return [
            {
                "Profile Summary (s)": self.profile_summary_s,
                "Trace Summary (s)": self.trace_summary_s,
                "System Statistics Summary (s)": self.system_summary_s,
                "trace events": self.trace_events,
            }
        ]


def time_analysis_scripts(result: HEPnOSExperimentResult) -> AnalysisTimings:
    """Time the three offline analysis scripts on collected data."""
    collector = result.collector

    t0 = time.perf_counter()
    summary = profile_summary(collector)
    summary.render()
    t_profile = time.perf_counter() - t0

    t0 = time.perf_counter()
    traces = trace_summary(collector)
    traces.render()
    traces.structure_counts()
    t_trace = time.perf_counter() - t0

    t0 = time.perf_counter()
    system_summary(collector.all_events()).render()
    t_system = time.perf_counter() - t0

    return AnalysisTimings(
        profile_summary_s=t_profile,
        trace_summary_s=t_trace,
        system_summary_s=t_system,
        trace_events=collector.total_trace_events,
    )
