#!/usr/bin/env python3
"""Fault campaign walkthrough: Sonata under injected faults, twice.

Runs the seeded fault campaign two times and asserts the reports are
byte-identical -- the determinism guarantee the fault-injection layer
makes (see docs/fault-injection.md).  Then prints the report: goodput
degradation, the resilience gauges, and the fault timeline.

Run:  python examples/fault_campaign.py [seed]
"""

import sys

from repro.experiments.faults import run_fault_campaign


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    first = run_fault_campaign(seed=seed)
    second = run_fault_campaign(seed=seed)
    assert first.report() == second.report(), "fault campaign not deterministic"

    print(f"two runs with seed={seed} produced byte-identical reports\n")
    print(first.report())


if __name__ == "__main__":
    main()
