"""The unified export package: registry protocol, byte-parity with the
historical per-format helpers, and the deprecation shim."""

import warnings

import pytest

from repro.store import PerfStore
from repro.symbiosys import Stage
from repro.symbiosys.export import (
    ExportBundle,
    events_to_json,
    exporter_names,
    get_exporter,
    series_to_csv,
    to_prometheus,
    write_profile_csv,
)
from repro.symbiosys.perfetto import chrome_trace_json

from ..conftest import make_echo_cluster, run_client_calls


@pytest.fixture(scope="module")
def finished_world():
    world = make_echo_cluster(seed=0, stage=Stage.FULL, monitoring=True)
    results = run_client_calls(world, [("echo", {"i": i}) for i in range(4)])
    assert world.sim.run_until(lambda: len(results) == 4, limit=5.0)
    world.cluster.shutdown()
    return world


@pytest.fixture(scope="module")
def bundle(finished_world):
    return ExportBundle.from_cluster(finished_world.cluster, name="reg-test")


class TestRegistry:
    def test_all_formats_registered(self):
        assert exporter_names() == [
            "critical", "csv", "json", "perfetto", "profile",
            "prometheus", "store",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown exporter"):
            get_exporter("xml")

    def test_missing_bundle_field_raises(self):
        with pytest.raises(ValueError, match="bundle.monitor"):
            get_exporter("prometheus").render(ExportBundle())

    def test_from_cluster_captures_seed(self, finished_world, bundle):
        assert bundle.seed == finished_world.cluster.seed
        assert bundle.monitor is finished_world.cluster.monitor
        assert bundle.collector is finished_world.cluster.collector


class TestByteParity:
    """Registry renders must equal the historical helpers byte-for-byte
    (the every-existing-export-stays-identical acceptance criterion)."""

    def test_prometheus(self, finished_world, bundle):
        assert get_exporter("prometheus").render(bundle) == to_prometheus(
            finished_world.cluster.monitor.registry
        )

    def test_series_csv(self, finished_world, bundle):
        assert get_exporter("csv").render(bundle) == series_to_csv(
            finished_world.cluster.monitor.store
        )

    def test_profile_csv(self, finished_world, bundle):
        collector = finished_world.cluster.collector
        assert get_exporter("profile").render(bundle) == write_profile_csv(
            collector.merged_origin_profile(), collector.registry
        )

    def test_trace_json(self, finished_world, bundle):
        assert get_exporter("json").render(bundle) == events_to_json(
            finished_world.cluster.collector.all_events()
        )

    def test_perfetto(self, finished_world, bundle):
        cluster = finished_world.cluster
        assert get_exporter("perfetto").render(bundle) == chrome_trace_json(
            monitor=cluster.monitor,
            collector=cluster.collector,
            fault_events=cluster.fault_events(),
        )


class TestStoreExporter:
    def test_render_refuses(self, bundle):
        with pytest.raises(ValueError, match="database"):
            get_exporter("store").render(bundle)

    def test_write_records_run(self, bundle, tmp_path):
        db = str(tmp_path / "export.db")
        run_id = get_exporter("store").write(bundle, db)
        store = PerfStore(db)
        try:
            run = store.run(run_id)
            assert run["name"] == "reg-test"
            assert store.metric_names(run_id)
            assert store.trace_event_rows(run_id)
        finally:
            store.close()

    def test_write_default_filename(self):
        assert get_exporter("store").filename == "perf.db"


class TestDeprecationShim:
    def test_old_module_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.symbiosys.exporters", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.symbiosys.exporters")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        from repro.symbiosys.export import text

        assert shim.to_prometheus is text.to_prometheus
        assert shim.series_to_csv is text.series_to_csv
        assert shim.write_text is text.write_text
