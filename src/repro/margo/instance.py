"""Margo: the unified RPC + tasking layer of a Mochi process.

One :class:`MargoInstance` is one simulated process.  It owns:

* an Argobots runtime with a *primary* pool/ES (client ULTs and, unless
  ``use_progress_thread`` is set, the Mercury progress ULT),
* optionally a *handler* pool with N execution streams (the "Threads
  (ESs)" column of Table IV) for servicing incoming RPCs,
* a Mercury instance bound to a fabric endpoint,
* a local wall clock (possibly skewed) and OS-statistics gauges,
* the SYMBIOSYS instrumentation hooks.

``forward`` and ``respond`` present Margo's blocking semantics on top of
callback-driven Mercury, exactly like ``margo_forward`` /
``margo_respond``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..argobots import AbtRuntime, Compute, Pool, ULT, YieldNow
from ..config import Replaceable
from ..mercury import HGConfig, HGCore, HGHandle, SerializationModel
from ..net import Fabric
from ..sim import LocalClock, Simulator
from .errors import MargoTimeoutError, RemoteRpcError
from .hooks import Instrumentation, NullInstrumentation
from .retry import RetryPolicy

__all__ = ["MargoConfig", "MargoInstance", "ProcessStats"]

#: Reserved response key carrying a remote handler failure back to the
#: origin.
_ERROR_KEY = "__margo_error__"


@dataclass(frozen=True, kw_only=True)
class MargoConfig(Replaceable):
    """Process-level Margo knobs (Table IV columns map here)."""

    #: Dedicated ES for the progress ULT ("Client Progress Thread?").
    use_progress_thread: bool = False
    #: Execution streams for the RPC handler pool ("Threads (ESs)").
    #: Zero means incoming RPCs run on the primary ES.
    n_handler_es: int = 0
    #: How long an idle progress iteration blocks waiting for OFI events,
    #: like HG_Progress's timeout.  Event arrival wakes the loop
    #: immediately regardless (the endpoint notifies the blocked waiter),
    #: so this only bounds how often an *idle* loop re-checks state.
    progress_idle_timeout: float = 2e-3

    def __post_init__(self) -> None:
        if self.n_handler_es < 0:
            raise ValueError("n_handler_es must be non-negative")
        if self.progress_idle_timeout <= 0:
            raise ValueError("progress_idle_timeout must be positive")


class ProcessStats:
    """OS-layer gauges SYMBIOSYS samples at trace events (memory, CPU)."""

    def __init__(self, mi: "MargoInstance"):
        self._mi = mi
        self.memory_bytes = 0
        self._last_cpu_sample = (0.0, 0.0)  # (time, cumulative busy)

    def add_memory(self, nbytes: int) -> None:
        self.memory_bytes += nbytes
        if self.memory_bytes < 0:
            raise ValueError("process memory gauge went negative")

    def cpu_utilization(self) -> float:
        """Busy fraction of this process's ESs since the last call."""
        rt = self._mi.rt
        now = self._mi.sim.now
        busy = sum(es.busy_time for es in rt.xstreams)
        last_t, last_busy = self._last_cpu_sample
        self._last_cpu_sample = (now, busy)
        dt = now - last_t
        n_es = max(1, len(rt.xstreams))
        if dt <= 0:
            return 0.0
        return min(1.0, (busy - last_busy) / (dt * n_es))


class MargoInstance:
    """One Mochi process: Margo + Mercury + Argobots + endpoint."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addr: str,
        node: str,
        *,
        config: Optional[MargoConfig] = None,
        hg_config: Optional[HGConfig] = None,
        serialization: Optional[SerializationModel] = None,
        clock: Optional[LocalClock] = None,
        instrumentation: Optional[Instrumentation] = None,
        retry: Optional[RetryPolicy] = None,
        rng=None,
        ctx_switch_cost: float = 50e-9,
    ):
        self.sim = sim
        self.fabric = fabric
        self.addr = addr
        self.node = node
        self.config = config or MargoConfig()
        self.clock = clock or LocalClock()
        self.instr = instrumentation or NullInstrumentation()
        #: Default resilience policy applied by ``forward`` when the call
        #: site does not pass its own.
        self.retry = retry
        #: Numpy Generator used for backoff jitter (None = no jitter).
        self._rng = rng

        self.rt = AbtRuntime(sim, name=addr, ctx_switch_cost=ctx_switch_cost)
        self.primary_pool = self.rt.create_pool(f"{addr}.primary")
        self.rt.create_xstream(self.primary_pool, f"{addr}.es-primary")

        if self.config.n_handler_es > 0:
            self.handler_pool: Pool = self.rt.create_pool(f"{addr}.handlers")
            for i in range(self.config.n_handler_es):
                self.rt.create_xstream(self.handler_pool, f"{addr}.es-h{i}")
        else:
            self.handler_pool = self.primary_pool

        if self.config.use_progress_thread:
            self.progress_pool: Pool = self.rt.create_pool(f"{addr}.progress")
            self.rt.create_xstream(self.progress_pool, f"{addr}.es-progress")
        else:
            self.progress_pool = self.primary_pool

        self.endpoint = fabric.create_endpoint(addr, node=node)
        self.hg = HGCore(
            sim,
            fabric,
            self.endpoint,
            self.rt,
            serialization=serialization,
            config=hg_config,
        )
        self.stats = ProcessStats(self)
        #: Lamport logical clock for distributed tracing.
        self.lamport = 0
        #: Request-id sequence, scoped per instance (a class-global
        #: counter here leaked across runs in one interpreter, making
        #: same-seed runs export different request ids).  The ``addr``
        #: prefix keeps ids unique within a cluster.
        self._req_seq = itertools.count(1)

        self._handlers: dict[tuple[str, int], Callable] = {}
        self._arrival_installed: set[str] = set()
        #: Handler exceptions caught and returned to the origin as
        #: RemoteRpcError payloads (the server survives them).
        self.handler_errors: list[tuple[str, Exception]] = []
        self._finalizing = False
        #: Optional fault-injection hook (duck-typed; see
        #: :class:`repro.faults.FaultInjector`).  Consulted at handler
        #: start: ``on_handler(mi, handle) -> Optional[HandlerAction]``.
        self.fault_hook = None
        self._crashed = False
        self._hang_until = 0.0
        #: The pool the progress loop should live on; runtime migration
        #: (enable_progress_thread) repoints this.
        self._progress_home = self.progress_pool
        self.instr.attach(self)
        self._progress_ult = self.rt.spawn(
            self._progress_loop(), self.progress_pool, name=f"{addr}.__margo_progress"
        )

    # -- clocks -------------------------------------------------------------

    def local_time(self) -> float:
        """Process-local wall clock reading (subject to drift/offset)."""
        return self.clock.read(self.sim.now)

    def lamport_tick(self) -> int:
        self.lamport += 1
        return self.lamport

    def lamport_receive(self, remote: int) -> int:
        self.lamport = max(self.lamport, remote) + 1
        return self.lamport

    def next_request_id(self) -> str:
        return f"{self.addr}-{next(self._req_seq)}"

    # -- registration ----------------------------------------------------------

    def register(
        self,
        rpc_name: str,
        handler: Optional[Callable[["MargoInstance", HGHandle], Generator]] = None,
        provider_id: int = 0,
    ) -> None:
        """Register an RPC.

        ``handler(mi, handle)`` is a generator executed in a fresh ULT on
        the handler pool; it must eventually ``yield from mi.respond(...)``.
        Client-side registration passes no handler.
        """
        if handler is None:
            self.hg.register(rpc_name)
            return
        key = (rpc_name, provider_id)
        if key in self._handlers:
            raise ValueError(
                f"RPC {rpc_name!r} provider {provider_id} already registered"
            )
        self._handlers[key] = handler
        if rpc_name not in self._arrival_installed:
            # First provider for this RPC name installs the HG callback;
            # further providers share it (dispatch is by provider_id).
            self.hg.register(rpc_name, self._make_arrival(rpc_name))
            self._arrival_installed.add(rpc_name)

    def _make_arrival(self, rpc_name: str) -> Callable[[HGHandle], None]:
        def _on_arrival(handle: HGHandle) -> None:
            # t4: runs inside the progress ULT via HG_Trigger.
            pid = handle.header.get("provider_id", 0)
            try:
                handler = self._handlers[(rpc_name, pid)]
            except KeyError:
                raise RuntimeError(
                    f"{self.addr}: no provider {pid} for RPC {rpc_name!r}"
                ) from None
            self.rt.spawn(
                self._handler_wrapper(handler, handle),
                self.handler_pool,
                name=f"{self.addr}.h:{rpc_name}",
            )

        return _on_arrival

    # -- origin side --------------------------------------------------------------

    def forward(
        self,
        target_addr: str,
        rpc_name: str,
        payload: Any,
        provider_id: int = 0,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Blocking RPC from a client ULT: ``out = yield from mi.forward(...)``.

        Returns the response payload.  The caller ULT blocks from t1 until
        the completion callback fires at t14.  With a ``timeout``, raises
        :class:`MargoTimeoutError` if no response arrives in time (the
        handle is cancelled; a late response is dropped).  If the remote
        handler raised, re-raises here as :class:`RemoteRpcError`.

        With a :class:`RetryPolicy` (per-call ``retry`` or the instance
        default), each attempt uses the policy's per-attempt timeout and
        failed attempts are retried with backoff, optionally failing over
        to alternate targets.  An explicit ``timeout`` overrides the
        policy's per-attempt deadline.
        """
        policy = retry if retry is not None else self.retry
        if policy is None:
            out = yield from self._forward_attempt(
                target_addr, rpc_name, payload, provider_id, timeout
            )
            return out

        ult = self.rt.self_ult()
        attempt_timeout = timeout if timeout is not None else policy.timeout
        last_exc: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            target = policy.target_for(target_addr, attempt)
            try:
                out = yield from self._forward_attempt(
                    target, rpc_name, payload, provider_id, attempt_timeout
                )
                return out
            except MargoTimeoutError as exc:
                last_exc = exc
            except RemoteRpcError as exc:
                if not policy.retry_remote_errors:
                    raise
                last_exc = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt, self._rng)
            next_target = policy.target_for(target_addr, attempt + 1)
            self.hg.pvars.add_at(self.hg._pv_fwd_retries, 1)
            if next_target != target_addr:
                self.hg.pvars.add_at(self.hg._pv_failed_over, 1)
            self.instr.on_forward_retry(
                self,
                getattr(last_exc, "handle", None),
                ult,
                attempt,
                delay,
                next_target,
            )
            if delay > 0:
                yield from self.rt.sleep(delay)
        assert last_exc is not None
        raise last_exc

    def _forward_attempt(
        self,
        target_addr: str,
        rpc_name: str,
        payload: Any,
        provider_id: int,
        timeout: Optional[float],
    ) -> Generator:
        """One post/wait cycle of ``forward`` (no retry logic)."""
        ult = self.rt.self_ult()
        handle = self.hg.create(target_addr, rpc_name)
        handle.header["provider_id"] = provider_id
        t1 = self.sim.now
        handle.marks["t1"] = t1
        self.instr.on_forward(self, handle, ult)

        ev = self.rt.eventual(f"fwd:{rpc_name}")

        def _on_complete(h: HGHandle) -> None:
            # t14 is when Mercury triggers the completion callback -- the
            # caller ULT may resume later if its ES is busy, and that
            # resume wait is *not* part of the RPC (the paper measures at
            # the callback).
            h.marks["t14"] = self.sim.now
            ev.signal(h)

        yield from self.hg.forward(handle, payload, _on_complete)
        if timeout is None:
            yield from ev.wait()
        else:
            ok, _ = yield from ev.wait(timeout=timeout)
            if not ok:
                self.hg.cancel(handle)
                self.hg.pvars.add_at(self.hg._pv_fwd_timeouts, 1)
                self.instr.on_forward_timeout(self, handle, ult, timeout)
                raise MargoTimeoutError(rpc_name, target_addr, timeout, handle)

        t14 = handle.marks["t14"]
        self.instr.on_forward_complete(self, handle, ult, t1, t14)
        if ult is not None:
            # Children's origin-execution time, for exclusive-time profiles.
            ult.local["child_rpc_time"] = (
                ult.local.get("child_rpc_time", 0.0) + (t14 - t1)
            )
        output = handle.output
        if isinstance(output, dict) and _ERROR_KEY in output:
            raise RemoteRpcError(rpc_name, target_addr, output[_ERROR_KEY])
        return output

    # -- target side --------------------------------------------------------------

    def _handler_wrapper(self, handler: Callable, handle: HGHandle) -> Generator:
        # The generator body starts lazily, so this first statement runs at
        # t5 -- when an ES picks the ULT up, not when it was spawned.
        handle.marks["t5"] = self.sim.now
        ult = self.rt.self_ult()
        self.instr.on_handler_start(self, handle, ult)
        try:
            if self.fault_hook is not None:
                action = self.fault_hook.on_handler(self, handle)
                if action is not None:
                    if action.stall > 0:
                        # An artificial stall burns ES time like a real
                        # misbehaving handler (it delays pool peers too).
                        yield Compute(action.stall)
                    if action.error is not None:
                        raise action.error
            yield from handler(self, handle)
        except Exception as exc:  # noqa: BLE001 - server must stay alive
            self.handler_errors.append((handle.rpc_name, exc))
            if "t8" in handle.marks:
                # Already responded: nothing more to tell the origin.
                self.instr.on_handler_end(self, handle, ult)
                return
            yield from self.respond(handle, {_ERROR_KEY: repr(exc)})
            self.instr.on_handler_end(self, handle, ult)
            return
        if "t8" not in handle.marks:
            raise RuntimeError(
                f"handler for {handle.rpc_name!r} returned without responding"
            )
        self.instr.on_handler_end(self, handle, ult)

    def get_input(self, handle: HGHandle) -> Generator:
        """Deserialize the request input (t6-t7); handler ULT only."""
        value = yield from self.hg.get_input(handle)
        return value

    def respond(self, handle: HGHandle, payload: Any) -> Generator:
        """Send the response and block until it is on the wire (t8..t13)."""
        ult = self.rt.self_ult()
        t8 = self.sim.now
        handle.marks["t8"] = t8
        self.instr.on_respond(self, handle, ult)
        ev = self.rt.eventual(f"resp:{handle.rpc_name}")
        yield from self.hg.respond(handle, payload, lambda h: ev.signal())
        yield from ev.wait()
        handle.marks["t13"] = self.sim.now

    def bulk_transfer(self, handle: HGHandle, size_bytes: int) -> Generator:
        """Pull bulk data from the RPC origin (handler ULT).  Returns the
        transfer duration."""
        elapsed = yield from self.hg.bulk_pull(handle, size_bytes)
        return elapsed

    # -- client ULTs -------------------------------------------------------------

    def client_ult(self, gen: Generator, name: str = "client") -> ULT:
        """Run an application generator as a ULT on the primary pool --
        sharing the primary ES with the progress ULT unless a dedicated
        progress thread was configured."""
        return self.rt.spawn(gen, self.primary_pool, name=f"{self.addr}.{name}")

    # -- runtime reconfiguration (the paper's future-work direction) -----------

    def add_handler_es(self) -> None:
        """Grow the RPC handler pool by one execution stream at runtime."""
        if self.handler_pool is self.primary_pool:
            # Promote to a dedicated handler pool first; new RPCs dispatch
            # there while in-flight ULTs finish on the primary.
            self.handler_pool = self.rt.create_pool(f"{self.addr}.handlers")
        n = sum(1 for es in self.rt.xstreams if es.pool is self.handler_pool)
        self.rt.create_xstream(self.handler_pool, f"{self.addr}.es-h{n}")

    def enable_progress_thread(self) -> bool:
        """Move the progress loop onto a dedicated execution stream.

        Returns True if a migration was initiated, False if the progress
        loop already had its own ES.  The running progress ULT notices on
        its next iteration, respawns itself on the new pool, and exits.
        """
        if self.progress_pool is not self.primary_pool:
            return False
        self.progress_pool = self.rt.create_pool(f"{self.addr}.progress")
        self.rt.create_xstream(self.progress_pool, f"{self.addr}.es-progress")
        self._progress_home = self.progress_pool
        return True

    def set_ofi_max_events(self, n: int) -> None:
        """Adjust Mercury's per-iteration OFI read cap at runtime."""
        self.hg.set_ofi_max_events(n)

    # -- process faults (driven by repro.faults.FaultInjector) ----------------

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`restart`."""
        return self._crashed

    def crash(self) -> None:
        """Fail-stop this process.

        The endpoint closes (in-flight deliveries are discarded, and a
        closed source cannot inject anything), the progress loop exits,
        and in-flight handler ULTs never complete their responses.  Peers
        observe only silence -- exactly what a timeout/retry policy is
        for.
        """
        if self._crashed:
            return
        self._crashed = True
        self._finalizing = True
        self.endpoint.close()

    def hang(self, duration: float) -> None:
        """Make the process unresponsive for ``duration`` seconds.

        Unlike a crash, the endpoint stays open: requests queue in the CQ
        and are serviced (late) once the hang lifts -- the GDB-attach
        scenario rather than the kill-9 one.
        """
        if duration < 0:
            raise ValueError("hang duration must be non-negative")
        self._hang_until = max(self._hang_until, self.sim.now + duration)

    def restart(self, warmup: float = 0.0) -> None:
        """Bring a crashed process back.

        The endpoint reopens and a fresh progress loop spawns.  A nonzero
        ``warmup`` models slow restart: the process is reachable (messages
        queue) but unresponsive until the warmup elapses.  RPC
        registrations survive -- this is a process restart, not a
        reconstruction.
        """
        if not self._crashed:
            return
        self._crashed = False
        self._finalizing = False
        self.endpoint.reopen()
        if warmup > 0:
            self._hang_until = max(self._hang_until, self.sim.now + warmup)
        self._progress_ult = self.rt.spawn(
            self._progress_loop(),
            self._progress_home,
            name=f"{self.addr}.__margo_progress",
        )

    def resilience_counters(self) -> dict[str, int]:
        """The degraded-mode gauges (timeouts, retries, failovers, dropped
        late responses) for this process."""
        return self.hg.resilience_counters()

    # -- progress loop -------------------------------------------------------------

    def _progress_loop(self) -> Generator:
        """The __margo_progress ULT.

        Mirrors Margo's scheduling heuristic: progress non-blocking and
        yield when there is other work (pending completions or peer ULTs
        in our pool); block in the OFI wait otherwise.  If a dedicated
        progress ES is enabled at runtime, the loop respawns itself there
        and exits.
        """
        hg = self.hg
        my_pool = self._progress_home
        while not self._finalizing:
            if self.rt.self_ult() is not self._progress_ult:
                # A restart spawned a replacement while this incarnation
                # was blocked in the OFI wait: stand down.
                return
            if self.sim.now < self._hang_until:
                # Hung process: no progress, no triggers; the endpoint
                # keeps queueing arrivals for when we come back.
                yield from self.rt.sleep(self._hang_until - self.sim.now)
                continue
            if self._progress_home is not my_pool:
                # Migrate: continue on the newly designated pool.
                self._progress_ult = self.rt.spawn(
                    self._progress_loop(),
                    self._progress_home,
                    name=f"{self.addr}.__margo_progress",
                )
                return
            busy_peers = len(my_pool) > 0
            timeout = (
                0.0
                if (hg.has_pending_completions or busy_peers)
                else self.config.progress_idle_timeout
            )
            yield from hg.progress(timeout=timeout)
            yield from hg.trigger()
            yield YieldNow()

    def finalize(self) -> None:
        """Ask the progress loop to exit; pending work still drains."""
        self._finalizing = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MargoInstance({self.addr!r}, node={self.node!r})"
