"""Analytical services over the persistent performance store.

The ``algo74/py-sim-serv`` pattern applied to this repository: a small
request/response API (:class:`~repro.analysis.protocol.Query` /
:class:`~repro.analysis.protocol.Reply` over canonical JSON) that
answers cross-run questions -- regression between two runs, percentile
trends vs. scale or seed, knob-importance tables, detector-event
summaries, bench trajectories -- every statistic with a bootstrap
confidence interval, never a bare median.

In-process::

    from repro.analysis import AnalysisService, Query

    service = AnalysisService("perf.db")
    reply = service.execute(Query("regression",
                                  {"base": "run-a", "head": "run-b"}))

Command line::

    python -m repro.analysis query regression --store perf.db \\
        --base run-a --head run-b
    python -m repro.analysis serve --store perf.db

See ``docs/analysis-service.md`` for the protocol and schema.
"""

from .protocol import (
    PROTOCOL_VERSION,
    Query,
    Reply,
    decode_query,
    decode_reply,
    encode_query,
    encode_reply,
)
from .queries import QUERY_OPS, run_query
from .service import AnalysisService, remote_query, serve
from .stats import bootstrap_ci, bootstrap_delta_ci, percentile

__all__ = [
    "AnalysisService",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "Query",
    "Reply",
    "bootstrap_ci",
    "bootstrap_delta_ci",
    "decode_query",
    "decode_reply",
    "encode_query",
    "encode_reply",
    "percentile",
    "remote_query",
    "run_query",
    "serve",
]
