"""Golden-trace regression corpus.

One canonical, fully validated run per service -- sdskv, bake, sonata,
hepnos -- with the artifact digests and the run summary checked into
``golden_corpus.json``.  ``check_golden`` re-runs each service and
compares against the stored entry; a mismatch produces a readable
unified diff of the run summaries (which embed the digests), so a
regression points at *what* moved (makespan, RPC counts, a specific
export) rather than just "hash changed".

``python -m repro.validate golden --regen`` refreshes the corpus after
an intentional behaviour change.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..cluster import Cluster
from ..symbiosys import Stage
from ..symbiosys.analysis import profile_summary
from ..symbiosys.export import series_to_csv, to_prometheus
from ..symbiosys.monitor import MonitorConfig
from ..symbiosys.perfetto import chrome_trace_json
from .invariants import ValidationConfig
from .workloads import RunArtifacts, legacy_settle_until, run_workload

__all__ = [
    "GOLDEN_SEED",
    "GoldenMismatch",
    "check_golden",
    "corpus_path",
    "golden_run",
    "golden_services",
    "regen_golden",
]

GOLDEN_SEED = 1234

_PID_SDSKV = 2
_PID_BAKE = 1


def corpus_path() -> Path:
    """The checked-in corpus lives next to this module."""
    return Path(__file__).with_name("golden_corpus.json")


@dataclass
class GoldenMismatch:
    """One service whose run diverged from the stored golden entry."""

    service: str
    changed: list[str]
    diff: str

    def render(self) -> str:
        header = (
            f"golden mismatch for {self.service!r}: "
            f"{', '.join(self.changed)} changed"
        )
        return header + ("\n" + self.diff if self.diff else "")


def _service_cluster() -> Cluster:
    return Cluster(
        seed=GOLDEN_SEED,
        stage=Stage.FULL,
        monitoring=MonitorConfig(interval=50e-6),
        validate=ValidationConfig(strict=True),
    )


def _artifacts(cluster: Cluster, service: str, makespan: float, ok: int) -> RunArtifacts:
    monitor = cluster.monitor
    return RunArtifacts(
        workload=service,
        seed=GOLDEN_SEED,
        preset="fast",
        scale=1,
        makespan=makespan,
        rpcs_ok=ok,
        rpcs_failed=0,
        leaked_events=cluster.leaked_events,
        violations=list(cluster.validator.violations),
        prometheus_text=to_prometheus(monitor.registry),
        series_csv=series_to_csv(monitor.store),
        perfetto_json=chrome_trace_json(
            monitor=monitor, collector=cluster.collector, fault_events=[]
        ),
        profile_text=profile_summary(cluster.collector).render(),
    )


def _run_sdskv() -> RunArtifacts:
    from ..services.sdskv import SdskvClient, SdskvProvider

    done: dict = {}
    count = {"ok": 0}
    with _service_cluster() as cluster:
        server = cluster.process("sdskv-svr", "nodeS", n_handler_es=2)
        SdskvProvider(server, 0, n_databases=2)
        client_mi = cluster.process("sdskv-cli", "nodeC")
        client = SdskvClient(client_mi)

        def body():
            for i in range(8):
                yield from client.put("sdskv-svr", 0, i % 2, f"k{i}", f"v{i}")
                count["ok"] += 1
            for i in range(8):
                value = yield from client.get("sdskv-svr", 0, i % 2, f"k{i}")
                assert value == f"v{i}"
                count["ok"] += 1
            done["at"] = cluster.sim.now

        client_mi.client_ult(body(), name="golden-sdskv")
        if not legacy_settle_until(
            cluster.sim, lambda: "at" in done, limit=5.0
        ):
            raise RuntimeError("golden sdskv run did not finish")
    return _artifacts(cluster, "sdskv", done["at"], count["ok"])


def _run_bake() -> RunArtifacts:
    from ..services.bake import BakeClient, BakeProvider

    done: dict = {}
    count = {"ok": 0}
    with _service_cluster() as cluster:
        server = cluster.process("bake-svr", "nodeS", n_handler_es=2)
        BakeProvider(server, 0)
        client_mi = cluster.process("bake-cli", "nodeC")
        client = BakeClient(client_mi)

        def body():
            rids = []
            for i in range(4):
                rid = yield from client.create_write_persist(
                    "bake-svr", 0, bytes(512 * (i + 1))
                )
                rids.append(rid)
                count["ok"] += 1
            for i, rid in enumerate(rids):
                data = yield from client.read("bake-svr", 0, rid)
                assert len(data) == 512 * (i + 1)
                count["ok"] += 1
            done["at"] = cluster.sim.now

        client_mi.client_ult(body(), name="golden-bake")
        if not legacy_settle_until(
            cluster.sim, lambda: "at" in done, limit=5.0
        ):
            raise RuntimeError("golden bake run did not finish")
    return _artifacts(cluster, "bake", done["at"], count["ok"])


def _run_sonata() -> RunArtifacts:
    return run_workload("sonata", seed=GOLDEN_SEED, scale=3, strict=True)


def _run_hepnos() -> RunArtifacts:
    """Two HEPnOS servers (sdskv + bake providers each) assembled on a
    Cluster, driven through the real HEPnOS client hashing path."""
    from ..services.hepnos import HEPnOSClient, HEPnOSService, PID_BAKE, PID_SDSKV
    from ..services.hepnos.service import _ServerInfo
    from ..services.bake import BakeProvider
    from ..services.sdskv import SdskvProvider

    done: dict = {}
    count = {"ok": 0}
    with _service_cluster() as cluster:
        service = HEPnOSService()
        for i in range(2):
            mi = cluster.process(f"hepnos{i}", f"snode{i}", n_handler_es=2)
            service.servers.append(mi)
            service.bake_providers.append(BakeProvider(mi, PID_BAKE))
            service.sdskv_providers.append(
                SdskvProvider(mi, PID_SDSKV, n_databases=2)
            )
            service.info.append(
                _ServerInfo(addr=f"hepnos{i}", node=f"snode{i}", n_databases=2)
            )
            service.group.join(f"hepnos{i}")
        client_mi = cluster.process("hepnos-cli", "cnode0")
        client = HEPnOSClient(client_mi, service)

        def body():
            for i in range(12):
                yield from client.store_event(f"run0/event{i}", {"e": i})
                count["ok"] += 1
            for i in range(0, 12, 3):
                value = yield from client.load_event(f"run0/event{i}")
                assert value == {"e": i}
                count["ok"] += 1
            done["at"] = cluster.sim.now

        client_mi.client_ult(body(), name="golden-hepnos")
        if not legacy_settle_until(
            cluster.sim, lambda: "at" in done, limit=5.0
        ):
            raise RuntimeError("golden hepnos run did not finish")
    return _artifacts(cluster, "hepnos", done["at"], count["ok"])


def _run_sharded() -> RunArtifacts:
    """A 32-node sharded fleet driven through the consistent-hash
    router: plain SDSKV keys plus HEPnOS-style dataset/run/event keys,
    so the sharded export surface (placement, PVARs, timeline) is
    byte-pinned at cluster scale."""
    from ..shard import ShardedKVService

    done: dict = {}
    count = {"ok": 0}
    with _service_cluster() as cluster:
        service = ShardedKVService.deploy(cluster, 32)
        client_mi = cluster.process("shard-cli", "cnode0")
        router = service.make_router(client_mi)

        def body():
            for i in range(24):
                yield from router.put(f"k{i:03d}", f"v{i}")
                count["ok"] += 1
            for i in range(12):
                yield from router.put_event("golden.ds", 0, i, {"e": i})
                count["ok"] += 1
            for i in range(24):
                value = yield from router.get(f"k{i:03d}")
                assert value == f"v{i}"
                count["ok"] += 1
            for i in range(0, 12, 3):
                value = yield from router.get_event("golden.ds", 0, i)
                assert value == {"e": i}
                count["ok"] += 1
            done["at"] = cluster.sim.now

        client_mi.client_ult(body(), name="golden-sharded")
        if not legacy_settle_until(
            cluster.sim, lambda: "at" in done, limit=5.0
        ):
            raise RuntimeError("golden sharded run did not finish")
    return _artifacts(cluster, "sharded", done["at"], count["ok"])


def _run_parallel(service: str) -> RunArtifacts:
    """Partitioned variant of a golden service, executed through the
    conservative parallel kernel with the serial executor -- the same
    window schedule any ``--workers N`` run must reproduce
    byte-for-byte (see :mod:`repro.validate.parallel`)."""
    from .parallel import parallel_golden_run

    return parallel_golden_run(service)


_GOLDEN_RUNS = {
    "sdskv": _run_sdskv,
    "bake": _run_bake,
    "sonata": _run_sonata,
    "hepnos": _run_hepnos,
    "sharded": _run_sharded,
    "parallel_sdskv": lambda: _run_parallel("sdskv"),
    "parallel_bake": lambda: _run_parallel("bake"),
    "parallel_hepnos": lambda: _run_parallel("hepnos"),
    "parallel_sharded": lambda: _run_parallel("sharded"),
}


def golden_services() -> list[str]:
    return list(_GOLDEN_RUNS)


def golden_run(service: str) -> RunArtifacts:
    """Execute one canonical service run (strict validation on)."""
    try:
        runner = _GOLDEN_RUNS[service]
    except KeyError:
        raise ValueError(
            f"unknown golden service {service!r} (expected one of "
            f"{golden_services()})"
        ) from None
    return runner()


def _entry(artifacts: RunArtifacts) -> dict:
    return {
        "digests": artifacts.digests(),
        "summary": artifacts.summary(),
    }


def load_corpus(path: Optional[Path] = None) -> dict:
    path = path or corpus_path()
    if not path.exists():
        raise FileNotFoundError(
            f"golden corpus missing at {path}; run "
            "`python -m repro.validate golden --regen`"
        )
    with open(path) as f:
        return json.load(f)


def regen_golden(
    path: Optional[Path] = None, services: Optional[list[str]] = None
) -> dict:
    """Re-run every golden service and rewrite the corpus file."""
    path = path or corpus_path()
    corpus = {}
    if path.exists():
        corpus = load_corpus(path)
    for service in services or golden_services():
        corpus[service] = _entry(golden_run(service))
    with open(path, "w", newline="\n") as f:
        json.dump(corpus, f, indent=2, sort_keys=True)
        f.write("\n")
    return corpus


def check_golden(
    path: Optional[Path] = None, services: Optional[list[str]] = None
) -> list[GoldenMismatch]:
    """Re-run each golden service and diff against the stored corpus."""
    corpus = load_corpus(path)
    mismatches = []
    for service in services or golden_services():
        if service not in corpus:
            mismatches.append(
                GoldenMismatch(
                    service=service,
                    changed=["missing from corpus"],
                    diff="",
                )
            )
            continue
        artifacts = golden_run(service)
        stored = corpus[service]
        current = _entry(artifacts)
        changed = sorted(
            name
            for name in set(stored["digests"]) | set(current["digests"])
            if stored["digests"].get(name) != current["digests"].get(name)
        )
        if stored["summary"] != current["summary"] and "summary" not in changed:
            changed.append("summary")
        if not changed:
            continue
        diff = "\n".join(
            difflib.unified_diff(
                stored["summary"].splitlines(),
                current["summary"].splitlines(),
                fromfile=f"{service}/golden",
                tofile=f"{service}/current",
                lineterm="",
            )
        )
        mismatches.append(
            GoldenMismatch(service=service, changed=changed, diff=diff)
        )
    return mismatches
