"""Tests for the in-situ policy engine (dynamic reconfiguration)."""

import pytest

import repro.argobots as abt
from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.symbiosys import (
    DedicateProgressES,
    GrowHandlerPool,
    MetricSample,
    Policy,
    PolicyEngine,
    RaiseOfiMaxEvents,
)


def mk_sample(**kw):
    defaults = dict(
        time=0.0,
        ofi_events_read=0,
        ofi_max_events=16,
        cq_depth=0,
        completion_queue_size=0,
        num_blocked=0,
        num_ready=0,
        handler_backlog=0,
        handler_es=2,
    )
    defaults.update(kw)
    return MetricSample(**defaults)


# ------------------------------------------------------------ rule units


def test_raise_ofi_condition_requires_pegging():
    p = RaiseOfiMaxEvents(window=4, pegged_fraction=0.75)
    pegged = [mk_sample(ofi_events_read=16)] * 4
    idle = [mk_sample(ofi_events_read=2)] * 4
    assert p.condition(pegged)
    assert not p.condition(idle)
    mixed = [mk_sample(ofi_events_read=16)] * 2 + [mk_sample(ofi_events_read=1)] * 2
    assert not p.condition(mixed)  # only 50% pegged < 75%


def test_raise_ofi_respects_max_cap():
    p = RaiseOfiMaxEvents(max_cap=32)
    capped = [mk_sample(ofi_events_read=32, ofi_max_events=32)] * 4
    assert not p.condition(capped)


def test_raise_ofi_validation():
    with pytest.raises(ValueError):
        RaiseOfiMaxEvents(pegged_fraction=0.0)
    with pytest.raises(ValueError):
        RaiseOfiMaxEvents(factor=1)


def test_dedicate_progress_condition():
    p = DedicateProgressES(window=4, depth_threshold=8)
    deep = [mk_sample(cq_depth=10)] * 4
    shallow = [mk_sample(cq_depth=1)] * 4
    assert p.condition(deep)
    assert not p.condition(shallow)
    # Completion-queue depth counts too.
    hybrid = [mk_sample(cq_depth=4, completion_queue_size=5)] * 4
    assert p.condition(hybrid)


def test_grow_handler_condition():
    p = GrowHandlerPool(window=4, backlog_per_es=2.0, max_es=8)
    saturated = [mk_sample(handler_backlog=10, handler_es=2)] * 4
    light = [mk_sample(handler_backlog=1, handler_es=2)] * 4
    maxed = [mk_sample(handler_backlog=100, handler_es=8)] * 4
    assert p.condition(saturated)
    assert not p.condition(light)
    assert not p.condition(maxed)


def test_policy_cooldown_and_history_gates():
    p = RaiseOfiMaxEvents(window=2, cooldown=1.0)
    h = [mk_sample(ofi_events_read=16)] * 2
    assert p.ready(now=0.0, history=h)
    p.last_fired = 0.0
    assert not p.ready(now=0.5, history=h)
    assert p.ready(now=1.5, history=h)
    assert not p.ready(now=10.0, history=h[:1])  # too little history


def test_policy_base_class_is_abstract():
    p = Policy()
    with pytest.raises(NotImplementedError):
        p.condition([])
    with pytest.raises(NotImplementedError):
        p.apply(None)


# ------------------------------------------------------------ engine integration


def make_world(**client_cfg):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(
        sim, fabric, "svr", "n0", config=MargoConfig(n_handler_es=2)
    )
    client = MargoInstance(sim, fabric, "cli", "n1", config=MargoConfig(**client_cfg))
    return sim, server, client


def test_engine_samples_periodically():
    sim, server, client = make_world()
    engine = PolicyEngine(client, [], period=1e-3)
    sim.run(until=10.5e-3)
    assert 8 <= len(engine.history) <= 11
    times = [s.time for s in engine.history]
    assert times == sorted(times)


def test_engine_stop():
    sim, server, client = make_world()
    engine = PolicyEngine(client, [], period=1e-3)
    sim.run(until=5e-3)
    n = len(engine.history)
    engine.stop()
    sim.run(until=20e-3)
    assert len(engine.history) <= n + 1


def test_engine_enables_pvars():
    sim, server, client = make_world()
    assert not client.hg.pvars_enabled
    PolicyEngine(client, [])
    assert client.hg.pvars_enabled


def test_engine_dedicated_monitor_es():
    sim, server, client = make_world()
    before = len(client.rt.xstreams)
    PolicyEngine(client, [])
    assert len(client.rt.xstreams) == before + 1


def test_engine_history_bounded():
    sim, server, client = make_world()
    engine = PolicyEngine(client, [], period=1e-5, history_limit=50)
    sim.run(until=5e-3)
    assert len(engine.history) <= 50


def test_engine_validation():
    sim, server, client = make_world()
    with pytest.raises(ValueError):
        PolicyEngine(client, [], period=0)


def test_engine_fires_raise_ofi_under_synthetic_backlog():
    """Flood the client CQ so num_ofi_events_read pegs; the policy must
    raise the cap and log the action."""
    sim, server, client = make_world()
    engine = PolicyEngine(
        client,
        [RaiseOfiMaxEvents(window=3, cooldown=0.5e-3, max_cap=64)],
        period=0.2e-3,
    )

    # Synthetic pressure: a deep backlog of RDMA completion entries that
    # the progress loop drains in capped batches.
    from repro.net import CQEntry, CQKind

    for _ in range(4000):
        ev = client.rt.eventual()
        client.endpoint.push(
            CQEntry(kind=CQKind.RDMA_COMPLETE, payload=("bulk", ev),
                    enqueued_at=0.0)
        )
    sim.run(until=30e-3)
    assert engine.actions, "policy never fired despite pegged reads"
    assert client.hg.ofi_max_events > 16
    assert engine.actions[0].policy == "RaiseOfiMaxEvents"


def test_engine_grows_handler_pool_under_load():
    """Server-side: a burst of slow RPCs piles ULTs into the handler
    pool; the GrowHandlerPool policy adds execution streams."""
    sim, server, client = make_world()
    engine = PolicyEngine(
        server,
        [GrowHandlerPool(window=2, backlog_per_es=1.5, max_es=8,
                         cooldown=0.2e-3)],
        period=0.2e-3,
    )

    def slow_handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(2e-3)
        yield from mi.respond(handle, "ok")

    server.register("slow", slow_handler)
    client.register("slow")
    results = []

    def call():
        out = yield from client.forward("svr", "slow", {})
        results.append(out)

    for _ in range(24):
        client.client_ult(call())
    sim.run_until(lambda: len(results) == 24, limit=0.2)
    assert len(results) == 24
    grown = [a for a in engine.actions if a.policy == "GrowHandlerPool"]
    assert grown, "handler pool never grew despite backlog"
    n_handler_es = sum(
        1 for es in server.rt.xstreams if es.pool is server.handler_pool
    )
    assert n_handler_es > 2
