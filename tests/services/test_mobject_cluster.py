"""Tests for the multi-node Mobject cluster (placement over SSG)."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.mobject_cluster import MobjectCluster, MobjectClusterClient
from repro.sim import Simulator


def make_cluster(n_nodes=3):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    cluster = MobjectCluster.deploy(sim, fabric, n_provider_nodes=n_nodes)
    mi = MargoInstance(sim, fabric, "cli", "cn0")
    client = MobjectClusterClient(mi, cluster)
    return sim, cluster, mi, client


def run_gen(sim, mi, gen, limit=10.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def test_deploy_validates():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    with pytest.raises(ValueError):
        MobjectCluster.deploy(sim, fabric, n_provider_nodes=0)


def test_group_membership_matches_nodes():
    sim, cluster, mi, client = make_cluster(4)
    assert cluster.size == 4
    assert cluster.group.members == [f"mobject{i}" for i in range(4)]


def test_placement_is_stable_and_spread():
    sim, cluster, mi, client = make_cluster(4)
    owners = {cluster.owner_of(f"obj{i}") for i in range(64)}
    assert owners <= set(cluster.group.members)
    assert len(owners) >= 3  # well spread
    assert cluster.owner_of("objX") == cluster.owner_of("objX")


def test_write_read_across_owners():
    sim, cluster, mi, client = make_cluster(3)
    payloads = {f"o{i}": bytes([i]) * 128 for i in range(10)}

    def flow():
        for oid, data in payloads.items():
            yield from client.write_op(oid, data)
        got = {}
        for oid in payloads:
            got[oid] = yield from client.read_op(oid)
        return got

    got = run_gen(sim, mi, flow())
    assert got == payloads
    # Data really landed on multiple distinct provider nodes.
    populated = [n for n in cluster.nodes if n.sdskv.total_items > 0]
    assert len(populated) >= 2


def test_stat_and_delete_route_to_owner():
    sim, cluster, mi, client = make_cluster(3)

    def flow():
        yield from client.write_op("thing", b"x" * 50)
        stat = yield from client.stat_op("thing")
        n = yield from client.delete_op("thing")
        gone = yield from client.read_op("thing")
        return stat, n, gone

    stat, n, gone = run_gen(sim, mi, flow())
    assert stat[0] == 50
    assert n == 1
    assert gone is None


def test_objects_only_on_their_owner():
    sim, cluster, mi, client = make_cluster(3)

    def flow():
        yield from client.write_op("lonely", b"z" * 40)

    run_gen(sim, mi, flow())
    owner = cluster.owner_of("lonely")
    for node in cluster.nodes:
        has_it = any("lonely" in key for db in node.sdskv.databases
                     for key in db._data)
        assert has_it == (node.addr == owner)
