"""Tests for HEPnOS: hierarchy, service deployment, client, data-loader."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.hepnos import (
    DataLoader,
    DataLoaderConfig,
    EventKey,
    HEPnOSClient,
    HEPnOSService,
    event_key,
    parse_event_key,
)
from repro.sim import Simulator
from repro.workloads import flatten_to_pairs, generate_event_files


# ------------------------------------------------------------ hierarchy


def test_event_key_roundtrip():
    key = event_key("NOvA", 3, 7, 123456)
    parsed = parse_event_key(key)
    assert parsed == EventKey("NOvA", 3, 7, 123456)


def test_event_key_ordering_is_numeric():
    k_small = event_key("d", 1, 0, 2)
    k_large = event_key("d", 1, 0, 10)
    assert k_small < k_large  # lexicographic == numeric thanks to padding


def test_event_key_validation():
    with pytest.raises(ValueError):
        event_key("bad%name", 0, 0, 0)
    with pytest.raises(ValueError):
        event_key("d", -1, 0, 0)
    with pytest.raises(ValueError):
        event_key("d", 10**9, 0, 0)
    with pytest.raises(ValueError):
        parse_event_key("not-a-key")


# ------------------------------------------------------------ deployment


def make_hepnos_world(
    n_servers=2,
    servers_per_node=1,
    n_databases=4,
    n_handler_es=4,
    n_clients=1,
    **deploy_kw,
):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    service = HEPnOSService.deploy(
        sim,
        fabric,
        n_servers=n_servers,
        servers_per_node=servers_per_node,
        n_handler_es=n_handler_es,
        n_databases=n_databases,
        **deploy_kw,
    )
    clients = [
        MargoInstance(sim, fabric, f"cli{i}", f"cnode{i}")
        for i in range(n_clients)
    ]
    return sim, service, clients


def test_deploy_layout():
    sim, service, _ = make_hepnos_world(n_servers=4, servers_per_node=2)
    assert [s.addr for s in service.servers] == [
        "hepnos0",
        "hepnos1",
        "hepnos2",
        "hepnos3",
    ]
    assert service.servers[0].node == "snode0"
    assert service.servers[1].node == "snode0"
    assert service.servers[2].node == "snode1"
    assert service.total_databases == 16


def test_deploy_validation():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    with pytest.raises(ValueError):
        HEPnOSService.deploy(
            sim, fabric, n_servers=0, servers_per_node=1, n_handler_es=1, n_databases=1
        )


def test_locate_maps_global_db_index():
    sim, service, _ = make_hepnos_world(n_servers=2, n_databases=3)
    assert service.locate(0) == ("hepnos0", 0)
    assert service.locate(2) == ("hepnos0", 2)
    assert service.locate(3) == ("hepnos1", 0)
    assert service.locate(5) == ("hepnos1", 2)
    with pytest.raises(ValueError):
        service.locate(6)


def test_client_hashing_is_stable_and_spread():
    sim, service, clients = make_hepnos_world(n_databases=8)
    client = HEPnOSClient(clients[0], service)
    keys = [event_key("d", 0, 0, i) for i in range(200)]
    indices = [client.db_index_for(k) for k in keys]
    assert indices == [client.db_index_for(k) for k in keys]  # stable
    assert len(set(indices)) > 8  # spread over many of the 16 dbs


def test_store_and_load_event():
    sim, service, clients = make_hepnos_world()
    client = HEPnOSClient(clients[0], service)
    key = event_key("NOvA", 1, 2, 3)
    done = {}

    def body():
        yield from client.store_event(key, b"physics!")
        done["value"] = yield from client.load_event(key)

    clients[0].client_ult(body())
    sim.run_until(lambda: "value" in done, limit=2.0)
    assert done["value"] == b"physics!"


def test_group_by_database_partitions_pairs():
    sim, service, clients = make_hepnos_world()
    client = HEPnOSClient(clients[0], service)
    pairs = [(event_key("d", 0, 0, i), b"x") for i in range(64)]
    groups = client.group_by_database(pairs)
    assert sum(len(g) for g in groups.values()) == 64
    assert all(
        client.db_index_for(k) == db for db, g in groups.items() for k, _ in g
    )


def test_list_events_across_databases():
    sim, service, clients = make_hepnos_world()
    client = HEPnOSClient(clients[0], service)
    keys = [event_key("DS", 1, 0, i) for i in range(20)]
    done = {}

    def body():
        for k in keys:
            yield from client.store_event(k, b"v")
        done["events"] = yield from client.list_events("DS%")

    clients[0].client_ult(body())
    sim.run_until(lambda: "events" in done, limit=5.0)
    assert [k for k, _ in done["events"]] == sorted(keys)


# ------------------------------------------------------------ data-loader


def test_dataloader_stores_everything():
    sim, service, clients = make_hepnos_world()
    files = generate_event_files(n_files=2, events_per_file=64)
    pairs = flatten_to_pairs(files)
    loader = DataLoader(
        clients[0], service, DataLoaderConfig(batch_size=32, pipeline_width=4)
    )
    loader.load(pairs)
    sim.run_until(lambda: loader.done, limit=10.0)
    assert loader.done
    assert loader.events_stored == len(pairs)
    assert service.total_events_stored == len(pairs)


def test_dataloader_data_integrity():
    """What the loader stores is literally retrievable."""
    sim, service, clients = make_hepnos_world()
    files = generate_event_files(n_files=1, events_per_file=16)
    pairs = flatten_to_pairs(files)
    loader = DataLoader(clients[0], service, DataLoaderConfig(batch_size=8))
    loader.load(pairs)
    sim.run_until(lambda: loader.done, limit=10.0)
    client = HEPnOSClient(clients[0], service)
    done = {}

    def body():
        done["value"] = yield from client.load_event(pairs[5][0])

    clients[0].client_ult(body())
    sim.run_until(lambda: "value" in done, limit=sim.now + 12.0)
    assert done["value"] == pairs[5][1]


def test_larger_batch_means_fewer_rpcs():
    counts = {}
    for batch in (1, 64):
        sim, service, clients = make_hepnos_world()
        pairs = flatten_to_pairs(generate_event_files(n_files=1, events_per_file=128))
        loader = DataLoader(
            clients[0], service, DataLoaderConfig(batch_size=batch, pipeline_width=2)
        )
        loader.load(pairs)
        sim.run_until(lambda: loader.done, limit=60.0)
        assert loader.done
        counts[batch] = loader.client.rpcs_issued
    assert counts[1] == 128  # one RPC per event
    assert counts[64] < counts[1] / 4


def test_more_databases_means_more_rpcs():
    """Same workload, same batch size: more total databases fan each
    window into more put_packed RPCs (§V-C-3)."""
    counts = {}
    for dbs in (2, 16):
        sim, service, clients = make_hepnos_world(n_databases=dbs)
        pairs = flatten_to_pairs(generate_event_files(n_files=1, events_per_file=128))
        loader = DataLoader(
            clients[0], service, DataLoaderConfig(batch_size=64, pipeline_width=2)
        )
        loader.load(pairs)
        sim.run_until(lambda: loader.done, limit=60.0)
        assert loader.done
        counts[dbs] = loader.client.rpcs_issued
    assert counts[16] > 2 * counts[2]


def test_dataloader_config_validation():
    with pytest.raises(ValueError):
        DataLoaderConfig(batch_size=0)
    with pytest.raises(ValueError):
        DataLoaderConfig(pipeline_width=0)


def test_synthetic_files_shape():
    files = generate_event_files(n_files=3, events_per_file=32, mean_event_bytes=512)
    assert len(files) == 3
    for f in files:
        assert len(f.events) == 32
        assert f.total_bytes > 32 * 64
        for subrun, event, payload in f.events:
            assert isinstance(payload, bytes)
            assert len(payload) >= 16
    # Deterministic: same seed, same bytes.
    again = generate_event_files(n_files=3, events_per_file=32, mean_event_bytes=512)
    assert files[0].events[0][2] == again[0].events[0][2]


def test_synthetic_files_validation():
    with pytest.raises(ValueError):
        generate_event_files(n_files=0)
    with pytest.raises(ValueError):
        generate_event_files(mean_event_bytes=0)
