"""HEPnOS service deployment and client API.

Each HEPnOS service provider process hosts one BAKE provider (object
data) and one SDSKV provider (object metadata) -- Figure 8.  Clients
talk to the providers directly.  Event storage goes through
``sdskv_put_packed``: the client hashes each event key over the *total*
number of databases in the deployment to pick the destination database
(and therefore server), mirroring the paper's §V-C-3 description.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Generator, Optional

from ...margo import MargoConfig, MargoInstance
from ...mercury import HGConfig
from ...net import Fabric
from ...sim import Simulator
from ...ssg import SSGGroup
from ..bake import BakeProvider
from ..sdskv import BackendCosts, SdskvClient, SdskvProvider

__all__ = ["HEPnOSService", "HEPnOSClient", "PID_BAKE", "PID_SDSKV"]

PID_BAKE = 1
PID_SDSKV = 2


def _stable_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "little")


@dataclass
class _ServerInfo:
    addr: str
    node: str
    n_databases: int


class HEPnOSService:
    """A deployed HEPnOS service: N server processes over M nodes."""

    def __init__(self) -> None:
        self.servers: list[MargoInstance] = []
        self.sdskv_providers: list[SdskvProvider] = []
        self.bake_providers: list[BakeProvider] = []
        self.info: list[_ServerInfo] = []
        #: Service membership (clients discover servers through this).
        self.group = SSGGroup("hepnos")

    @classmethod
    def deploy(
        cls,
        sim: Simulator,
        fabric: Fabric,
        *,
        n_servers: int,
        servers_per_node: int,
        n_handler_es: int,
        n_databases: int,
        backend: str = "map",
        sdskv_costs: Optional[BackendCosts] = None,
        hg_config: Optional[HGConfig] = None,
        serialization=None,
        ctx_switch_cost: float = 50e-9,
        instrumentation_factory=None,
        addr_prefix: str = "hepnos",
        node_prefix: str = "snode",
    ) -> "HEPnOSService":
        """Create the server processes.  ``n_databases`` is per provider
        (Table IV's "Databases" divided across servers is handled by the
        caller passing per-server counts)."""
        if n_servers < 1 or servers_per_node < 1:
            raise ValueError("need at least one server and one per node")
        service = cls()
        mk_instr = instrumentation_factory or (lambda: None)
        for i in range(n_servers):
            node = f"{node_prefix}{i // servers_per_node}"
            addr = f"{addr_prefix}{i}"
            mi = MargoInstance(
                sim,
                fabric,
                addr,
                node,
                config=MargoConfig(n_handler_es=n_handler_es),
                hg_config=hg_config,
                serialization=serialization,
                ctx_switch_cost=ctx_switch_cost,
                instrumentation=mk_instr(),
            )
            service.servers.append(mi)
            service.bake_providers.append(BakeProvider(mi, PID_BAKE))
            service.sdskv_providers.append(
                SdskvProvider(
                    mi,
                    PID_SDSKV,
                    backend=backend,
                    n_databases=n_databases,
                    costs=sdskv_costs,
                )
            )
            service.info.append(
                _ServerInfo(addr=addr, node=node, n_databases=n_databases)
            )
            service.group.join(addr)
        return service

    @property
    def total_databases(self) -> int:
        return sum(s.n_databases for s in self.info)

    @property
    def total_events_stored(self) -> int:
        return sum(p.total_items for p in self.sdskv_providers)

    def locate(self, db_index: int) -> tuple[str, int]:
        """Map a global database index to (server addr, local db id)."""
        if not 0 <= db_index < self.total_databases:
            raise ValueError(f"database index {db_index} out of range")
        for info in self.info:
            if db_index < info.n_databases:
                return info.addr, db_index
            db_index -= info.n_databases
        raise AssertionError("unreachable")


class HEPnOSClient:
    """Client-side HEPnOS API (event storage path)."""

    def __init__(self, mi: MargoInstance, service: HEPnOSService):
        self.mi = mi
        self.service = service
        self.sdskv = SdskvClient(mi)
        #: RPC issue counter, for throughput reporting.
        self.rpcs_issued = 0

    def db_index_for(self, key: str) -> int:
        """The paper's hashing scheme: key hash modulo the total number
        of databases."""
        return _stable_hash(key) % self.service.total_databases

    def group_by_database(
        self, pairs: list[tuple[str, object]]
    ) -> dict[int, list[tuple[str, object]]]:
        groups: dict[int, list[tuple[str, object]]] = {}
        for key, value in pairs:
            groups.setdefault(self.db_index_for(key), []).append((key, value))
        return groups

    def put_packed_to(self, db_index: int, pairs: list) -> Generator:
        """One sdskv_put_packed to the database's owning server."""
        addr, local_db = self.service.locate(db_index)
        self.rpcs_issued += 1
        n = yield from self.sdskv.put_packed(addr, PID_SDSKV, local_db, pairs)
        return n

    def store_event(self, key: str, value: object) -> Generator:
        n = yield from self.put_packed_to(self.db_index_for(key), [(key, value)])
        return n

    def load_event(self, key: str) -> Generator:
        addr, local_db = self.service.locate(self.db_index_for(key))
        value = yield from self.sdskv.get(addr, PID_SDSKV, local_db, key)
        return value

    def list_events(self, prefix: str) -> Generator:
        """Gather events with the given key prefix across every database."""
        out = []
        for db_index in range(self.service.total_databases):
            addr, local_db = self.service.locate(db_index)
            items = yield from self.sdskv.list_keyvals(
                addr, PID_SDSKV, local_db, prefix=prefix
            )
            out.extend(items)
        out.sort()
        return out
