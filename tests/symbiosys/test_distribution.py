"""Tests for interval-distribution tracking (reservoir + percentiles)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbiosys.profiling import RESERVOIR_SIZE, IntervalStats


def test_small_sample_percentiles_exact():
    s = IntervalStats()
    for v in range(1, 11):  # 1..10
        s.add(float(v))
    assert s.percentile(0) == 1.0
    assert s.percentile(100) == 10.0
    assert 4.0 <= s.percentile(50) <= 7.0


def test_reservoir_bounded():
    s = IntervalStats()
    for v in range(10_000):
        s.add(float(v))
    assert len(s.samples()) == RESERVOIR_SIZE
    assert s.count == 10_000


def test_percentile_empty_and_bounds():
    s = IntervalStats()
    assert s.percentile(50) == 0.0
    with pytest.raises(ValueError):
        s.percentile(-1)
    with pytest.raises(ValueError):
        s.percentile(101)


def test_extremes_always_exact():
    s = IntervalStats()
    for v in range(100_000):
        s.add(float(v))
    assert s.percentile(0) == 0.0
    assert s.percentile(100) == 99_999.0


def test_reservoir_is_deterministic():
    a = IntervalStats()
    b = IntervalStats()
    for v in range(1000):
        a.add(float(v))
        b.add(float(v))
    assert sorted(a.samples()) == sorted(b.samples())


def test_percentile_estimate_reasonable_on_uniform():
    s = IntervalStats()
    for v in range(100_000):
        s.add(float(v))
    # Uniform 0..1e5: the reservoir median should land near 5e4 (a wide
    # tolerance -- 64 samples).
    assert 2e4 < s.percentile(50) < 8e4
    assert s.percentile(90) > s.percentile(50) > s.percentile(10)


def test_merge_combines_reservoirs():
    a = IntervalStats()
    b = IntervalStats()
    for v in range(10):
        a.add(float(v))
    for v in range(1000, 1010):
        b.add(float(v))
    a.merge(b)
    samples = a.samples()
    assert len(samples) == 20
    assert any(v < 100 for v in samples)
    assert any(v >= 1000 for v in samples)


@given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=50)
def test_property_reservoir_subset_of_inputs(values):
    s = IntervalStats()
    for v in values:
        s.add(v)
    assert len(s.samples()) == min(len(values), RESERVOIR_SIZE)
    for v in s.samples():
        assert v in values


@given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=50)
def test_property_percentiles_monotone(values):
    s = IntervalStats()
    for v in values:
        s.add(v)
    qs = [0, 10, 25, 50, 75, 90, 100]
    ps = [s.percentile(q) for q in qs]
    assert ps == sorted(ps)
    assert ps[0] == min(values)
    assert ps[-1] == max(values)
