"""The analysis service: in-process execution and the socket server.

:class:`AnalysisService` wraps one :class:`~repro.store.PerfStore` and
executes :class:`~repro.analysis.protocol.Query` objects; exceptions
become error replies, never propagate.  :func:`serve` exposes the same
service over newline-delimited canonical JSON on a TCP socket (the
py-sim-serv deployment shape); :func:`remote_query` is the matching
client."""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Union

from .protocol import (
    Query,
    Reply,
    decode_query,
    decode_reply,
    encode_query,
    encode_reply,
)
from .queries import run_query

__all__ = ["AnalysisService", "remote_query", "serve"]


class AnalysisService:
    """Request/response analysis over one performance store."""

    def __init__(self, store):
        from ..store import PerfStore

        self.store = (
            store if isinstance(store, PerfStore) else PerfStore(store)
        )
        # One SQLite connection serves all server threads; queries are
        # serialized (they are read-only and fast, so this is simpler
        # and safer than per-thread connections).
        self._lock = threading.Lock()

    def execute(self, query: Union[Query, str]) -> Reply:
        """Run one query; malformed input or a failing operation yields
        an error reply (the server must survive bad requests)."""
        try:
            if isinstance(query, str):
                query = decode_query(query)
            with self._lock:
                result = run_query(self.store, query.op, query.params)
            return Reply(op=query.op, ok=True, result=result)
        except Exception as exc:
            op = query.op if isinstance(query, Query) else "?"
            return Reply(op=op, ok=False, error=f"{type(exc).__name__}: {exc}")

    def handle_line(self, line: str) -> str:
        """One wire round-trip: JSON request line in, reply line out."""
        return encode_reply(self.execute(line))


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via serve()
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            reply = self.server.service.handle_line(line)  # type: ignore[attr-defined]
            self.wfile.write(reply.encode() + b"\n")
            self.wfile.flush()


class AnalysisServer(socketserver.ThreadingTCPServer):
    """TCP front end; one request line per reply line, many per
    connection."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: AnalysisService):
        super().__init__(address, _Handler)
        self.service = service


def serve(
    store,
    *,
    host: str = "127.0.0.1",
    port: int = 9991,
    ready: Optional[callable] = None,
) -> None:
    """Serve analysis queries until interrupted.

    ``ready(host, port)`` is called once the socket is bound (the bound
    port matters when ``port=0`` picks a free one)."""
    service = AnalysisService(store)
    with AnalysisServer((host, port), service) as server:
        if ready is not None:
            ready(*server.server_address)
        server.serve_forever()


def remote_query(
    host: str, port: int, query: Query, *, timeout: float = 30.0
) -> Reply:
    """Send one query to a running server and decode the reply."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_query(query).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return decode_reply(buf.decode())
