"""Fault-campaign experiment: a Sonata workload under injected faults.

SYMBIOSYS studies how composed services *perform*; this harness studies
how they *degrade*.  It runs the Figure 7 Sonata ``store_multi_json``
workload twice from one seed -- once fault-free, once under a
:class:`~repro.faults.FaultPlan` (message loss, latency spikes,
duplicates, a server crash/restart, handler faults) with a client-side
:class:`~repro.margo.RetryPolicy` -- and reports goodput and latency
degradation next to the resilience gauges and the fault-event timeline.

Everything is deterministic: ``run_fault_campaign(seed=S).report()`` is
byte-identical across runs for the same ``S``.  The report deliberately
contains no HG cookies or ULT ids (those come from process-global
counters and differ between runs in one interpreter); request ids and
span ids are run-scoped and would be safe, but stay out for brevity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster
from ..faults import (
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    HandlerFaultRule,
    RestartFault,
)
from ..margo import MargoError, RetryPolicy
from ..services.sonata import RPC_STORE_MULTI, SonataClient, SonataProvider
from ..symbiosys import Stage
from ..workloads import generate_json_records

__all__ = [
    "FaultCampaignResult",
    "default_fault_plan",
    "default_retry_policy",
    "run_fault_campaign",
]

_SERVER = "sonata-svr"
_CLIENT = "sonata-cli"
_PROVIDER_ID = 1


def default_fault_plan(server: str = _SERVER) -> FaultPlan:
    """The canonical campaign: lossy/noisy wire toward the server, one
    crash with a slow restart, and occasional handler faults."""
    return FaultPlan(
        name="sonata-default-campaign",
        wire_rules=[
            DropRule(dst=server, kind="rpc_request", probability=0.10),
            DuplicateRule(dst=server, probability=0.05),
            DelayRule(dst=server, extra=100e-6, spread=100e-6, probability=0.15),
        ],
        process_faults=[
            RestartFault(addr=server, at=0.8e-3, downtime=0.4e-3, warmup=0.1e-3),
        ],
        handler_rules=[
            HandlerFaultRule(
                rpc=RPC_STORE_MULTI,
                error_probability=0.04,
                stall_probability=0.10,
                stall=150e-6,
            ),
        ],
    )


def default_retry_policy() -> RetryPolicy:
    """Client policy sized to ride out the default campaign's restart."""
    return RetryPolicy(
        max_attempts=5,
        timeout=0.5e-3,
        backoff=0.1e-3,
        backoff_factor=2.0,
        max_backoff=1e-3,
        jitter=0.25,
    )


@dataclass
class FaultCampaignResult:
    """Baseline vs faulted run of one seeded Sonata campaign."""

    seed: int
    plan_name: str
    n_records: int
    batch_size: int
    baseline_makespan: float
    faulted_makespan: float
    batches_ok: int
    batches_failed: int
    #: Per-process degraded-mode gauges of the faulted run.
    resilience: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The injector's deterministic fault timeline.
    fault_events: list[tuple] = field(default_factory=list)

    @property
    def records_stored(self) -> int:
        return self.batches_ok * self.batch_size

    @property
    def baseline_goodput(self) -> float:
        return self.n_records / self.baseline_makespan

    @property
    def faulted_goodput(self) -> float:
        if self.faulted_makespan <= 0:
            return 0.0
        return self.records_stored / self.faulted_makespan

    @property
    def goodput_degradation(self) -> float:
        """Fraction of baseline goodput lost to the campaign."""
        if self.baseline_goodput <= 0:
            return 0.0
        return 1.0 - self.faulted_goodput / self.baseline_goodput

    def merged_resilience(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for counters in self.resilience.values():
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def report(self) -> str:
        """Deterministic plain-text report (byte-identical per seed)."""
        lines = [
            f"fault campaign {self.plan_name!r} (seed={self.seed})",
            f"  workload: {self.n_records} records in batches of {self.batch_size}",
            f"  baseline: makespan {self.baseline_makespan * 1e3:.6f} ms, "
            f"goodput {self.baseline_goodput:.3f} records/s",
            f"  faulted:  makespan {self.faulted_makespan * 1e3:.6f} ms, "
            f"goodput {self.faulted_goodput:.3f} records/s",
            f"  degradation: {100 * self.goodput_degradation:.2f}% goodput, "
            f"{self.batches_failed} of {self.batches_ok + self.batches_failed} "
            f"batches lost",
            "  resilience gauges:",
        ]
        for name, value in sorted(self.merged_resilience().items()):
            lines.append(f"    {name:<32} {value:>8}")
        lines.append(f"  fault events ({len(self.fault_events)}):")
        for ev in self.fault_events:
            t, kind, *detail = ev
            detail_s = " ".join(str(d) for d in detail)
            lines.append(f"    {t * 1e3:12.6f} ms  {kind:<16} {detail_s}")
        return "\n".join(lines)


def _run_workload(
    *,
    seed: int,
    n_records: int,
    batch_size: int,
    stage: Stage,
    plan: Optional[FaultPlan],
    retry: Optional[RetryPolicy],
    time_limit: float,
) -> tuple[Cluster, float, int, int]:
    """One Sonata run; returns (cluster, makespan, ok, failed) batches."""
    with Cluster(seed=seed, stage=stage, fault_plan=plan, retry=retry) as cluster:
        server = cluster.process(_SERVER, "nodeA", n_handler_es=2)
        SonataProvider(server, _PROVIDER_ID)
        client_mi = cluster.process(_CLIENT, "nodeB")
        client = SonataClient(client_mi)
        records = generate_json_records(n_records, fields_per_record=6)
        outcome = {"ok": 0, "failed": 0}
        done = cluster.sim.event("campaign-done")

        def body():
            yield from client.create_database(_SERVER, _PROVIDER_ID, "bench")
            for start in range(0, n_records, batch_size):
                batch = records[start : start + batch_size]
                try:
                    yield from client.store_multi(
                        _SERVER, _PROVIDER_ID, "bench", batch,
                        batch_size=len(batch),
                    )
                    outcome["ok"] += 1
                except MargoError:
                    # Retries exhausted or the handler kept failing: the
                    # batch is lost, the workload moves on.
                    outcome["failed"] += 1
            done.succeed(cluster.sim.now)

        client_mi.client_ult(body(), name="fault-campaign")
        if not cluster.run_until_event(done, limit=time_limit):
            raise RuntimeError("fault campaign did not finish in time")
        makespan = done.value
    return cluster, makespan, outcome["ok"], outcome["failed"]


def run_fault_campaign(
    *,
    seed: int = 0,
    n_records: int = 2_000,
    batch_size: int = 200,
    stage: Stage = Stage.FULL,
    plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    time_limit: float = 600.0,
) -> FaultCampaignResult:
    """Run the Sonata workload fault-free and under ``plan``; compare."""
    plan = plan if plan is not None else default_fault_plan()
    retry = retry if retry is not None else default_retry_policy()

    _, base_makespan, base_ok, base_failed = _run_workload(
        seed=seed, n_records=n_records, batch_size=batch_size, stage=stage,
        plan=None, retry=None, time_limit=time_limit,
    )
    if base_failed:
        raise RuntimeError("baseline run lost batches without faults")

    faulted, makespan, ok, failed = _run_workload(
        seed=seed, n_records=n_records, batch_size=batch_size, stage=stage,
        plan=plan, retry=retry, time_limit=time_limit,
    )
    return FaultCampaignResult(
        seed=seed,
        plan_name=plan.name,
        n_records=n_records,
        batch_size=batch_size,
        baseline_makespan=base_makespan,
        faulted_makespan=makespan,
        batches_ok=ok,
        batches_failed=failed,
        resilience=faulted.resilience_report(),
        fault_events=faulted.fault_events(),
    )
