"""Mochi microservices built on the simulated stack (DESIGN.md §2):
BAKE, SDSKV, Sonata, REMI, Mobject (single-node and SSG-sharded
cluster), HEPnOS, GekkoFS, and FlameStore."""

from . import (
    bake,
    flamestore,
    gekkofs,
    hepnos,
    mobject,
    mobject_cluster,
    remi,
    sdskv,
    sonata,
)

__all__ = [
    "bake",
    "flamestore",
    "gekkofs",
    "hepnos",
    "mobject",
    "mobject_cluster",
    "remi",
    "sdskv",
    "sonata",
]
