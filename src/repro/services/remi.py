"""REMI: resource migration between microservice providers.

A REMI *fileset* is a named bundle of files (name -> bytes).  Migration
pulls every file from the origin provider through the bulk interface and
installs it locally, optionally removing the source copy -- the
"shifting of data between microservice instances" the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoInstance
from ..mercury import BulkRef, HGHandle

__all__ = ["RemiFileset", "RemiProvider", "RemiClient"]

RPC_MIGRATE = "remi_migrate_rpc"

_ALL_RPCS = (RPC_MIGRATE,)


@dataclass
class RemiFileset:
    name: str
    files: dict[str, bytes] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self.files.values())


class RemiProvider:
    """Hosts filesets and accepts migrations."""

    #: Cost of installing one migrated file (metadata + fsync-ish).
    install_fixed = 1.5e-6
    install_per_byte = 0.15e-9

    def __init__(self, mi: MargoInstance, provider_id: int = 0):
        self.mi = mi
        self.provider_id = provider_id
        self.filesets: dict[str, RemiFileset] = {}
        mi.register(RPC_MIGRATE, self._h_migrate, provider_id)

    def add_fileset(self, fileset: RemiFileset) -> None:
        if fileset.name in self.filesets:
            raise ValueError(f"fileset {fileset.name!r} already present")
        self.filesets[fileset.name] = fileset
        self.mi.stats.add_memory(fileset.total_bytes)

    def _h_migrate(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        bulk: BulkRef = inp["bulk"]
        # Pull the whole fileset content from the origin provider.
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        fileset: RemiFileset = bulk.data
        if fileset.name in self.filesets:
            yield from mi.respond(handle, {"ret": -1, "error": "exists"})
            return
        for fname, content in fileset.files.items():
            yield Compute(
                self.install_fixed + self.install_per_byte * len(content)
            )
        self.filesets[fileset.name] = RemiFileset(
            name=fileset.name, files=dict(fileset.files)
        )
        mi.stats.add_memory(fileset.total_bytes)
        yield from mi.respond(
            handle, {"ret": 0, "files": len(fileset.files)}
        )


class RemiClient:
    """Origin-side migration driver, usually co-located with a provider."""

    def __init__(self, mi: MargoInstance, provider: Optional[RemiProvider] = None):
        self.mi = mi
        self.provider = provider
        for rpc in _ALL_RPCS:
            mi.register(rpc)

    def migrate(
        self,
        target: str,
        target_provider_id: int,
        fileset: RemiFileset,
        *,
        remove_source: bool = False,
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_MIGRATE,
            {
                "name": fileset.name,
                "bulk": BulkRef(fileset, fileset.total_bytes),
            },
            target_provider_id,
        )
        if out["ret"] == 0 and remove_source and self.provider is not None:
            removed = self.provider.filesets.pop(fileset.name, None)
            if removed is not None:
                self.mi.stats.add_memory(-removed.total_bytes)
        return out
