"""Table V: analysis-script overheads.

Times the three offline analysis scripts (profile summary, trace
summary, system statistics summary) over the data collected from a
full-support HEPnOS run.  The paper's shape: the trace summary is by far
the slowest (481.1 s over ~1M samples at their scale), with the system
summary next (73.4 s) and the profile summary fastest (35.1 s).
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    run_hepnos_experiment,
    time_analysis_scripts,
)
from .conftest import run_once

EVENTS_PER_CLIENT = 4096


def _run():
    result = run_hepnos_experiment(
        TABLE_IV["C2"], events_per_client=EVENTS_PER_CLIENT
    )
    return result, time_analysis_scripts(result)


def test_table5_analysis_overheads(benchmark, report):
    result, timings = run_once(benchmark, _run)
    report.append(
        f"Table V: analysis overheads over {timings.trace_events} trace events"
    )
    report.append(ascii_table(timings.rows()))

    # Shape: trace summary is the most expensive script; the profile
    # summary is the cheapest (paper: 481.1s vs 73.4s vs 35.1s).
    assert timings.trace_summary_s > timings.profile_summary_s
    # A meaningful amount of data was actually analyzed.
    assert timings.trace_events > 10_000
    assert result.events_stored == 32 * EVENTS_PER_CLIENT
    benchmark.extra_info.update(
        profile_s=round(timings.profile_summary_s, 4),
        trace_s=round(timings.trace_summary_s, 4),
        system_s=round(timings.system_summary_s, 4),
        events=timings.trace_events,
    )
