"""Figure 6: identifying the dominant callpaths (ior + Mobject).

One Mobject provider node, 10 ior clients colocated on the same physical
node.  The profile summary ranks distributed callpaths by cumulative
end-to-end latency; per the paper, ``mobject_read_op`` is the most
expensive API operation overall and ``mobject_read_op ->
sdskv_list_keyvals_rpc`` is its dominant component, while the individual
per-step times (serialization, RDMA, handler) are negligible next to the
target execution time.
"""

from repro.experiments import run_mobject_experiment
from .conftest import run_once


def _run():
    return run_mobject_experiment(n_clients=10)


def test_fig6_dominant_callpaths(benchmark, report):
    result = run_once(benchmark, _run)
    summary = result.summary
    top5 = summary.top(5)

    report.append("Figure 6: top-5 dominant callpaths by cumulative latency")
    report.append(summary.render(top_n=5))

    names = [row.name for row in top5]
    # Shape 1: the read op dominates overall.
    assert names[0] == "mobject_read_op"
    # Shape 2: its dominant component is the key-value listing.
    assert names[1] == "mobject_read_op -> sdskv_list_keyvals_rpc"
    list_row = summary.row_for("mobject_read_op -> sdskv_list_keyvals_rpc")
    read_row = summary.row_for("mobject_read_op")
    read_children = [
        r for r in summary.rows
        if r.name.startswith("mobject_read_op -> ")
    ]
    assert list_row.cumulative_latency == max(
        r.cumulative_latency for r in read_children
    )
    assert list_row.cumulative_latency > 0.4 * read_row.cumulative_latency
    # Shape 3: per-step overheads are negligible next to target execution.
    for row in (read_row, list_row):
        assert row.fraction("target_execution_time") > 0.5
        assert row.fraction("input_serialization_time") < 0.1
        assert row.fraction("target_handler_time") < 0.1
    # Every callpath identifies its origin/target entities.
    assert read_row.origin_counts and read_row.target_counts
    assert set(read_row.target_counts) == {"mobject0"}
    assert len(read_row.origin_counts) == 10  # all ten ior clients
    benchmark.extra_info["top5"] = names
